//===- tests/em_test.cpp - Entanglement-management semantics --------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Tests the barrier semantics case by case against the paper's rules:
// down-pointer writes pin at the holder's depth, cross-pointer writes pin
// at the LCA, stores into pinned holders inherit exposure, entangled reads
// are detected exactly when the pointee's heap is not an ancestor of the
// reader's, pins deepen monotonically, and joins unpin exactly at the
// depth where entanglement dies.
//
// All scenarios run with one worker so the interleavings are exact:
// branch A of every rt::par runs to completion before branch B starts.
//
//===----------------------------------------------------------------------===//

#include "core/Em.h"
#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "support/Stats.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace mpl;
using namespace mpl::ops;

namespace {
rt::Config cfg1() {
  rt::Config C;
  C.NumWorkers = 1;
  C.Profile = false;
  C.GcMinBytes = 1 << 16;
  return C;
}

int64_t stat(const char *Name) {
  return StatRegistry::get().valueOf(Name);
}
} // namespace

TEST(EmSemantics, UpPointerWritesNeverPin) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shallow(newRef(boxInt(1))); // Depth 0.
    rt::par(
        [&] {
          // Depth-1 ref stores a pointer to a depth-0 object: up-pointer.
          Local Mine(newRef(Shallow.slot()));
          EXPECT_FALSE(Shallow.get()->isPinned());
          return unit();
        },
        [&] { return unit(); });
  });
  EXPECT_EQ(stat("em.pins.down"), 0);
  EXPECT_EQ(stat("em.pins.cross"), 0);
}

TEST(EmSemantics, IntraHeapWritesNeverPin) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local A(newRef(boxInt(1)));
    Local B(newRef(A.slot())); // Same heap.
    refSet(B.get(), A.slot());
    EXPECT_FALSE(A.get()->isPinned());
  });
  EXPECT_EQ(stat("em.pins.down") + stat("em.pins.cross") +
                stat("em.pins.holder"),
            0);
}

TEST(EmSemantics, DownPointerPinDepthIsHolderDepth) {
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shared0(newRef(boxInt(0))); // Depth 0.
    rt::par(
        [&] {
          rt::par(
              [&] {
                // Depth 2 object published into a depth-0 ref.
                Local Mine(newRef(boxInt(5)));
                refSet(Shared0.get(), Mine.slot());
                EXPECT_TRUE(Mine.get()->isPinned());
                EXPECT_EQ(Mine.get()->unpinDepth(), 0u);
                return unit();
              },
              [&] { return unit(); });
          // After the inner join (to depth 1), still pinned: unpin depth 0
          // has not been reached.
          Object *P = Object::asPointer(refGet(Shared0.get()));
          EXPECT_TRUE(P && P->isPinned());
          return unit();
        },
        [&] { return unit(); });
    // After the outer join (to depth 0): unpinned.
    Object *P = Object::asPointer(refGet(Shared0.get()));
    ASSERT_NE(P, nullptr);
    EXPECT_FALSE(P->isPinned());
    EXPECT_EQ(unboxInt(refGet(P)), 5);
  });
}

TEST(EmSemantics, IntermediateDepthPinReleasesAtItsJoin) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg1());
  R.run([&] {
    rt::par(
        [&] {
          Local Shared1(newRef(boxInt(0))); // Depth 1.
          rt::par(
              [&] {
                Local Mine(newRef(boxInt(9))); // Depth 2.
                refSet(Shared1.get(), Mine.slot());
                EXPECT_EQ(Mine.get()->unpinDepth(), 1u);
                return unit();
              },
              [&] { return unit(); });
          // Join merged depth 2 into depth 1 == unpin depth: released.
          Object *P = Object::asPointer(refGet(Shared1.get()));
          EXPECT_TRUE(P && !P->isPinned());
          return unit();
        },
        [&] { return unit(); });
  });
  EXPECT_GT(stat("em.unpins"), 0);
}

TEST(EmSemantics, PinDepthDeepensToMinimum) {
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shared0(newRef(boxInt(0)));
    rt::par(
        [&] {
          Local Shared1(newRef(boxInt(0))); // Depth 1.
          rt::par(
              [&] {
                Local Mine(newRef(boxInt(7))); // Depth 2.
                // First published at depth 1, then at depth 0: the pin
                // must keep the minimum unpin depth.
                refSet(Shared1.get(), Mine.slot());
                EXPECT_EQ(Mine.get()->unpinDepth(), 1u);
                refSet(Shared0.get(), Mine.slot());
                EXPECT_EQ(Mine.get()->unpinDepth(), 0u);
                // Publishing at depth 1 again must NOT shallow the pin.
                refSet(Shared1.get(), Mine.slot());
                EXPECT_EQ(Mine.get()->unpinDepth(), 0u);
                return unit();
              },
              [&] { return unit(); });
          return unit();
        },
        [&] { return unit(); });
  });
}

TEST(EmSemantics, StoreIntoPinnedHolderInheritsExposure) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shared0(newRef(boxInt(0)));
    rt::par(
        [&] {
          // Publish a mutable record, then store a fresh object into it:
          // the fresh object becomes reachable by concurrent readers of
          // the record, so it must inherit the pin.
          Local Rec(newMutRecord(0b1, {boxInt(0)}));
          refSet(Shared0.get(), Rec.slot());
          EXPECT_TRUE(Rec.get()->isPinned());
          Local Fresh(newRef(boxInt(11)));
          recSetMut(Rec.get(), 0, Fresh.slot());
          EXPECT_TRUE(Fresh.get()->isPinned());
          EXPECT_LE(Fresh.get()->unpinDepth(), Rec.get()->unpinDepth());
          return unit();
        },
        [&] { return unit(); });
  });
  EXPECT_GT(stat("em.pins.holder"), 0);
}

TEST(EmSemantics, ReadBarrierFiresOnlyOnEntangledValues) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shared(newRef(boxInt(0)));
    rt::par(
        [&] {
          // A's own reads of ancestor data: never entangled.
          Slot V = refGet(Shared.get());
          (void)V;
          Local Mine(newRef(boxInt(3)));
          refSet(Shared.get(), Mine.slot());
          // Reading back one's own published object: its heap is the
          // reader's own heap — not entangled.
          Slot Back = refGet(Shared.get());
          (void)Back;
          return unit();
        },
        [&] { return unit(); });
  });
  EXPECT_EQ(stat("em.reads.entangled"), 0)
      << "only cross-task reads are entangled";
}

TEST(EmSemantics, SiblingReadIsEntangledExactlyOnce) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shared(newRef(boxInt(0)));
    rt::par(
        [&] {
          Local Mine(newRef(boxInt(3)));
          refSet(Shared.get(), Mine.slot());
          return unit();
        },
        [&] {
          Slot V = refGet(Shared.get()); // Entangled (A's object).
          (void)V;
          return unit();
        });
    // After the join the object merged into this heap: reads of it are
    // plain ancestor reads again.
    Slot V = refGet(Shared.get());
    (void)V;
  });
  EXPECT_EQ(stat("em.reads.entangled"), 1);
}

TEST(EmSemantics, ReadBarrierDeepensPinToReaderLca) {
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shared0(newRef(boxInt(0)));
    rt::par(
        [&] {
          rt::par(
              [&] {
                Local Mine(newRef(boxInt(5)));
                refSet(Shared0.get(), Mine.slot());
                return unit();
              },
              [&] { return unit(); });
          return unit();
        },
        [&] {
          // Reader at depth 1 in the *other* subtree: LCA depth 0. The
          // pin is already at 0 (holder depth); reading keeps it there.
          Object *P = Object::asPointer(refGet(Shared0.get()));
          if (P) {
            EXPECT_TRUE(P->isPinned());
            EXPECT_EQ(P->unpinDepth(), 0u);
          }
          return unit();
        });
  });
}

TEST(EmSemantics, OffModeSkipsAllBookkeeping) {
  StatRegistry::get().resetAll();
  rt::Config C = cfg1();
  C.Mode = em::Mode::Off;
  rt::Runtime R(C);
  R.run([&] {
    Local Shared(newRef(boxInt(0)));
    // Disentangled mutation only (Off is unsound for entanglement).
    for (int I = 0; I < 100; ++I)
      refSet(Shared.get(), boxInt(I));
    rt::par([&] { return refGet(Shared.get()); },
            [&] { return unit(); });
  });
  EXPECT_EQ(stat("em.pins.down") + stat("em.pins.cross") +
                stat("em.reads.entangled"),
            0);
}

TEST(EmSemantics, CrossPointerViaFreshImmutableRecord) {
  // B embeds an entangled pointer into a fresh immutable record and
  // publishes the record; A's object must survive B's GC and the record
  // must stay traversable after both branches' work.
  rt::Runtime R(cfg1());
  int64_t Got = 0;
  R.run([&] {
    Local SharedA(newRef(boxInt(0)));
    Local SharedB(newRef(boxInt(0)));
    rt::par(
        [&] {
          Local Mine(newRef(boxInt(21)));
          refSet(SharedA.get(), Mine.slot());
          return unit();
        },
        [&] {
          Object *FromA = Object::asPointer(refGet(SharedA.get()));
          if (!FromA)
            return unit();
          Local LA(FromA);
          Local Wrap(newRecord(0b1, {LA.slot()}));
          refSet(SharedB.get(), Wrap.slot());
          // Churn + collect in B.
          for (int I = 0; I < 30000; ++I)
            newRecord(0, {boxInt(I)});
          rt::Runtime::current()->maybeCollect(/*Force=*/true);
          return unit();
        });
    Object *Wrap = Object::asPointer(refGet(SharedB.get()));
    ASSERT_NE(Wrap, nullptr);
    Object *Inner = Object::asPointer(recGet(Wrap, 0));
    ASSERT_NE(Inner, nullptr);
    Got = unboxInt(refGet(Inner)) * 2;
  });
  EXPECT_EQ(Got, 42);
}

TEST(EmSemantics, DeepTreePinsReleaseLevelByLevel) {
  // A chain of nested forks publishing at every level; every pin must be
  // gone when the whole tree joins.
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shared(newArray(8, boxInt(0)));
    struct Rec {
      static Slot go(Object *SharedArr, int Depth) {
        if (Depth == 8)
          return unit();
        Local LS(SharedArr);
        rt::par(
            [&] {
              Local Mine(newRef(boxInt(Depth)));
              arrSet(LS.get(), static_cast<uint32_t>(Depth), Mine.slot());
              return go(LS.get(), Depth + 1);
            },
            [&] { return unit(); });
        return unit();
      }
    };
    Rec::go(Shared.get(), 0);
    for (uint32_t I = 0; I < 8; ++I) {
      Object *P = Object::asPointer(arrGet(Shared.get(), I));
      ASSERT_NE(P, nullptr) << "level " << I;
      EXPECT_FALSE(P->isPinned()) << "level " << I;
      EXPECT_EQ(unboxInt(refGet(P)), I);
    }
  });
  EXPECT_EQ(stat("em.pins.down"), 8);
  EXPECT_EQ(stat("em.unpins"), 8);
}

TEST(EmSemantics, PinnedBytesBalanceUnpinnedBytes) {
  em::Counts.reset();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shared(newArray(64, boxInt(0)));
    rt::par(
        [&] {
          for (uint32_t I = 0; I < 64; ++I) {
            Local Box(newRef(boxInt(I)));
            arrSet(Shared.get(), I, Box.slot());
          }
          return unit();
        },
        [&] { return unit(); });
  });
  em::CounterSnapshot S = em::Counts.snapshot();
  EXPECT_GT(S.PinnedBytes, 0);
  EXPECT_EQ(S.PinnedBytes, S.UnpinnedBytes)
      << "every pinned byte must be released by a join";
  EXPECT_EQ(S.livePinnedObjects(), 0);
}

//===----------------------------------------------------------------------===//
// Join-time unpin at every depth
//===----------------------------------------------------------------------===//

namespace {
class JoinUnpinAtDepth : public ::testing::TestWithParam<int> {};

/// Forks a nest \p Depth levels deep; the innermost branch publishes one
/// box per level it passed through into the depth-0 \p Board, so a single
/// run creates pins with unpin depth 0 held across 1..Depth joins.
Slot publishChain(Object *Board, int Level, int Depth) {
  Local LB(Board);
  Local Box(newRef(boxInt(Level)));
  arrSet(LB.get(), static_cast<uint32_t>(Level), Box.slot());
  EXPECT_EQ(Box.get()->unpinDepth(), 0u) << "level " << Level;
  if (Level + 1 < Depth)
    rt::par([&] { return publishChain(LB.get(), Level + 1, Depth); },
            [&] { return unit(); });
  return unit();
}
} // namespace

TEST_P(JoinUnpinAtDepth, AllPinsReleasedByFinalJoin) {
  const int Depth = GetParam();
  em::Counts.reset();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Board(newArray(static_cast<uint32_t>(Depth), boxInt(0)));
    rt::par([&] { return publishChain(Board.get(), 0, Depth); },
            [&] { return unit(); });
    // Mid-run invariant pass: the tree has fully joined back to the root
    // task, so every pin (unpin depth 0) must have been released.
    em::InvariantReport Rep = em::verifyInvariants(/*ExpectFullyJoined=*/true);
    EXPECT_TRUE(Rep.ok()) << Rep.str();
    for (int L = 0; L < Depth; ++L) {
      Object *Box =
          Object::asPointer(arrGet(Board.get(), static_cast<uint32_t>(L)));
      ASSERT_NE(Box, nullptr) << "level " << L;
      EXPECT_FALSE(Box->isPinned()) << "level " << L;
      EXPECT_EQ(unboxInt(refGet(Box)), L);
    }
  });
  em::CounterSnapshot S = em::Counts.snapshot();
  EXPECT_EQ(S.PinnedObjects, Depth);
  EXPECT_EQ(S.UnpinnedObjects, Depth)
      << "one release per published level, all at the final join";
  EXPECT_EQ(S.livePinnedObjects(), 0);
  EXPECT_EQ(S.livePinnedBytes(), 0)
      << "PinnedBytes must return to zero after the final join";
}

INSTANTIATE_TEST_SUITE_P(Depths, JoinUnpinAtDepth, ::testing::Range(1, 7),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return "Depth" + std::to_string(I.param);
                         });

//===----------------------------------------------------------------------===//
// Detect mode: pre-paper MPL rejects entangled executions
//===----------------------------------------------------------------------===//

namespace {
rt::Config cfgDetect() {
  rt::Config C = cfg1();
  C.Mode = em::Mode::Detect;
  return C;
}
} // namespace

TEST(EmDetectMode, EntangledReadThrowsRecoverably) {
  rt::Runtime R(cfgDetect());
  bool Caught = false;
  try {
    R.run([&] {
      Local Shared(newRef(boxInt(0)));
      rt::par(
          [&] {
            Local Mine(newRef(boxInt(3)));
            refSet(Shared.get(), Mine.slot());
            return unit();
          },
          [&] {
            // Sibling read of A's object: entangled -> Detect rejects.
            return refGet(Shared.get());
          });
    });
  } catch (const em::EntanglementError &E) {
    Caught = true;
    EXPECT_EQ(E.site(), em::EntanglementError::Site::Read);
    EXPECT_EQ(E.readerDepth(), 1u);
    EXPECT_EQ(E.pointeeDepth(), 1u);
    EXPECT_EQ(E.objectKind(), ObjKind::Ref);
    EXPECT_NE(std::string(E.what()).find("entanglement detected"),
              std::string::npos)
        << E.what();
  }
  EXPECT_TRUE(Caught) << "entangled read must reject in Detect mode";

  // The rejection is recoverable: the same Runtime runs a clean program.
  int64_t Got = 0;
  R.run([&] {
    Local Box(newRef(boxInt(11)));
    Got = unboxInt(refGet(Box.get()));
  });
  EXPECT_EQ(Got, 11);
}

TEST(EmDetectMode, CrossPointerWriteThrowsRecoverably) {
  rt::Runtime R(cfgDetect());
  bool Caught = false;
  try {
    R.run([&] {
      // Leak A's object to B through a C++-side channel: no runtime
      // read is involved, so the write barrier is the first (and only)
      // place the entanglement can be caught.
      Object *Leak = nullptr;
      rt::par(
          [&] {
            Local Mine(newRef(boxInt(5)));
            Leak = Mine.get();
            return unit();
          },
          [&] {
            Local B(newRef(boxInt(0)));
            Local LA(Leak);
            refSet(B.get(), LA.slot()); // Cross-pointer write.
            return unit();
          });
    });
  } catch (const em::EntanglementError &E) {
    Caught = true;
    EXPECT_EQ(E.site(), em::EntanglementError::Site::Write);
    EXPECT_EQ(E.objectKind(), ObjKind::Ref);
    EXPECT_NE(std::string(E.what()).find("entanglement created by write"),
              std::string::npos)
        << E.what();
  }
  EXPECT_TRUE(Caught) << "cross-pointer write must reject in Detect mode";
}

TEST(EmDetectMode, DisentangledProgramsRun) {
  // Detect mode permits down-pointers (the remembered-set case) and any
  // program whose concurrent tasks never observe each other's data.
  em::Counts.reset();
  rt::Runtime R(cfgDetect());
  int64_t Fib = 0;
  R.run([&] {
    Local Shared(newArray(4, boxInt(0)));
    rt::par(
        [&] {
          // Down-pointer publish, never read by the concurrent sibling.
          Local Mine(newRef(boxInt(17)));
          arrSet(Shared.get(), 0, Mine.slot());
          return unit();
        },
        [&] { return unit(); });
    // Read after the join: disentangled, allowed.
    Object *P = Object::asPointer(arrGet(Shared.get(), 0));
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(unboxInt(refGet(P)), 17);
    Fib = wl::fib(18);
  });
  EXPECT_EQ(Fib, 2584);
  em::CounterSnapshot S = em::Counts.snapshot();
  EXPECT_GT(S.DownPointerPins, 0);
  EXPECT_EQ(S.EntangledReads, 0);
}

//===----------------------------------------------------------------------===//
// Off mode: the ablation must stay sound on disentangled programs
//===----------------------------------------------------------------------===//

TEST(EmOffMode, DisentangledKernelsMatchManageMode) {
  // Off disables every barrier, so it is only sound for disentangled
  // programs — on those it must compute the same answers as Manage with
  // zero entanglement bookkeeping.
  auto runKernels = [](em::Mode M) {
    rt::Config C = cfg1();
    C.Mode = M;
    rt::Runtime R(C);
    std::pair<int64_t, bool> Out{0, false};
    R.run([&] {
      Out.first = wl::fib(20);
      Local In(wl::randomInts(4000, 1 << 30, 42));
      Local Sorted(wl::mergesortInts(In.get()));
      Out.second = wl::isSortedInts(Sorted.get());
    });
    return Out;
  };

  em::Counts.reset();
  auto Off = runKernels(em::Mode::Off);
  em::CounterSnapshot OffCounts = em::Counts.snapshot();
  auto Manage = runKernels(em::Mode::Manage);

  EXPECT_EQ(Off.first, Manage.first);
  EXPECT_TRUE(Off.second);
  EXPECT_TRUE(Manage.second);
  EXPECT_EQ(OffCounts.PinnedObjects, 0)
      << "Off mode must run no barrier bookkeeping at all";
  EXPECT_EQ(OffCounts.EntangledReads, 0);
  EXPECT_EQ(OffCounts.DownPointerPins + OffCounts.CrossPointerPins +
                OffCounts.PinnedHolderPins,
            0);
}

//===----------------------------------------------------------------------===//
// Cost-model validation (the paper's Section 4 bounds, empirically)
//===----------------------------------------------------------------------===//

namespace {
class EmCostModel : public ::testing::TestWithParam<int64_t> {};
} // namespace

TEST_P(EmCostModel, PinnedBytesLinearInEntangledObjects) {
  // The space cost of entanglement is bounded by the entangled data: K
  // published boxes must pin exactly K objects and K * sizeof(box) bytes,
  // independent of how much *disentangled* allocation happens around them.
  const int64_t K = GetParam();
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Board(newArray(static_cast<uint32_t>(K), 0));
    rt::par(
        [&] {
          for (int64_t I = 0; I < K; ++I) {
            Local Box(newRef(boxInt(I)));
            arrSet(Board.get(), static_cast<uint32_t>(I), Box.slot());
            // Disentangled churn between publishes must not add pins.
            for (int J = 0; J < 20; ++J)
              newRecord(0, {boxInt(J)});
          }
          return unit();
        },
        [&] { return unit(); });
  });
  const int64_t BoxBytes = 16; // Ref: 8B header + 1 slot.
  EXPECT_EQ(stat("em.pins.objects"), K);
  EXPECT_EQ(stat("em.pinned.bytes"), K * BoxBytes);
  EXPECT_EQ(stat("em.unpins"), K);
  EXPECT_EQ(stat("em.unpins.bytes"), K * BoxBytes);
}

TEST_P(EmCostModel, EntangledReadsCountExactly) {
  // The time cost of detection is one event per entangled load: reading a
  // sibling's box N times must count exactly N entangled reads.
  const int64_t N = GetParam();
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg1());
  R.run([&] {
    Local Shared(newRef(boxInt(0)));
    rt::par(
        [&] {
          Local Box(newRef(boxInt(7)));
          refSet(Shared.get(), Box.slot());
          return unit();
        },
        [&] {
          int64_t Acc = 0;
          for (int64_t I = 0; I < N; ++I) {
            Object *P = Object::asPointer(refGet(Shared.get()));
            if (P)
              Acc += unboxInt(refGet(P));
          }
          return boxInt(Acc);
        });
  });
  // Each iteration performs two barriered loads: the shared ref (pointer
  // into a concurrent heap -> entangled) and the box's own cell (also in
  // the concurrent heap, but holding an immediate -> not entangled).
  EXPECT_EQ(stat("em.reads.entangled"), N);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EmCostModel,
                         ::testing::Values(1, 4, 16, 64, 256, 1024),
                         [](const ::testing::TestParamInfo<int64_t> &I) {
                           return "K" + std::to_string(I.param);
                         });
