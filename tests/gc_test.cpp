//===- tests/gc_test.cpp - Unit tests for the local collector -------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// These tests drive the collector directly over hand-built heap
// hierarchies, without the runtime layer, so every scenario is fully
// deterministic.
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"
#include "gc/ShadowStack.h"
#include "hh/Heap.h"

#include <gtest/gtest.h>

using namespace mpl;

namespace {
struct GcFixture : ::testing::Test {
  HeapManager HM;
  Collector GC;
  ShadowStack Roots;

  Heap *Root = nullptr;

  void SetUp() override { Root = HM.createRoot(); }

  Object *newInt(Heap *H, int64_t V) {
    Object *O = H->allocateObject(ObjKind::Ref, true, 1, 0);
    O->setSlot(0, (static_cast<uint64_t>(V) << 1) | 1);
    return O;
  }

  static int64_t intOf(Object *O) {
    return static_cast<int64_t>(O->getSlot(0)) >> 1;
  }

  Object *newPair(Heap *H, Object *A, Object *B) {
    Object *O = H->allocateObject(ObjKind::Record, false, 2, 0b11);
    O->setSlot(0, Object::fromPointer(A));
    O->setSlot(1, Object::fromPointer(B));
    return O;
  }
};
} // namespace

TEST_F(GcFixture, RootedObjectSurvivesAndMoves) {
  Object *O = newInt(Root, 42);
  Slot Ref = Object::fromPointer(O);
  Roots.pushSlot(&Ref);

  GcOutcome Out = GC.collectChain(Root, Roots);
  Object *New = Object::asPointer(Ref);
  ASSERT_NE(New, nullptr);
  EXPECT_NE(New, O) << "unpinned live object should have been evacuated";
  EXPECT_EQ(intOf(New), 42);
  EXPECT_EQ(Out.ObjectsCopied, 1);
  EXPECT_EQ(Heap::of(New), Root);
  Roots.popSlot(&Ref);
}

TEST_F(GcFixture, GarbageIsReclaimed) {
  for (int I = 0; I < 10000; ++I)
    newInt(Root, I);
  size_t Before = Root->footprintBytes();
  GcOutcome Out = GC.collectChain(Root, Roots); // No roots: all garbage.
  EXPECT_EQ(Out.ObjectsCopied, 0);
  EXPECT_GT(Out.BytesReclaimed, 0);
  EXPECT_LT(Root->footprintBytes(), Before);
}

TEST_F(GcFixture, TransitiveReachabilityPreserved) {
  Object *A = newInt(Root, 1);
  Object *B = newInt(Root, 2);
  Object *P = newPair(Root, A, B);
  Object *Q = newPair(Root, P, P); // Shared substructure.
  Slot Ref = Object::fromPointer(Q);
  Roots.pushSlot(&Ref);
  for (int I = 0; I < 1000; ++I)
    newInt(Root, I); // Garbage.

  GC.collectChain(Root, Roots);

  Object *NewQ = Object::asPointer(Ref);
  Object *NewP0 = Object::asPointer(NewQ->getSlot(0));
  Object *NewP1 = Object::asPointer(NewQ->getSlot(1));
  EXPECT_EQ(NewP0, NewP1) << "sharing must be preserved";
  EXPECT_EQ(intOf(Object::asPointer(NewP0->getSlot(0))), 1);
  EXPECT_EQ(intOf(Object::asPointer(NewP0->getSlot(1))), 2);
  Roots.popSlot(&Ref);
}

TEST_F(GcFixture, CycleThroughMutableCellsCollects) {
  // A <-> B cycle, rooted; then unrooted and collected away.
  Object *A = newInt(Root, 1);
  Object *B = newInt(Root, 2);
  A->setSlot(0, Object::fromPointer(B));
  B->setSlot(0, Object::fromPointer(A));
  Slot Ref = Object::fromPointer(A);
  Roots.pushSlot(&Ref);

  GcOutcome Out1 = GC.collectChain(Root, Roots);
  EXPECT_EQ(Out1.ObjectsCopied, 2);
  Object *NewA = Object::asPointer(Ref);
  Object *NewB = Object::asPointer(NewA->getSlot(0));
  EXPECT_EQ(Object::asPointer(NewB->getSlot(0)), NewA);

  Roots.popSlot(&Ref);
  GcOutcome Out2 = GC.collectChain(Root, Roots);
  EXPECT_EQ(Out2.ObjectsCopied, 0) << "unrooted cycle must die";
}

TEST_F(GcFixture, PinnedObjectStaysInPlace) {
  Object *O = newInt(Root, 7);
  Root->addPinned(O, 0);
  GcOutcome Out = GC.collectChain(Root, Roots); // Not rooted — pin retains.
  EXPECT_EQ(Out.ObjectsInPlace, 1);
  EXPECT_FALSE(O->isForwarded());
  EXPECT_EQ(intOf(O), 7) << "pinned object must not move or be reclaimed";
}

TEST_F(GcFixture, PinnedClosureKeptInPlaceTransitively) {
  // The paper's key GC rule: everything reachable from a pinned object is
  // preserved in place (a concurrent task may traverse it barrier-free).
  Object *Leaf1 = newInt(Root, 10);
  Object *Leaf2 = newInt(Root, 20);
  Object *Rec = newPair(Root, Leaf1, Leaf2);
  Root->addPinned(Rec, 0);

  GcOutcome Out = GC.collectChain(Root, Roots);
  EXPECT_EQ(Out.ObjectsInPlace, 3);
  EXPECT_FALSE(Leaf1->isForwarded());
  EXPECT_FALSE(Leaf2->isForwarded());
  EXPECT_EQ(Object::asPointer(Rec->getSlot(0)), Leaf1)
      << "pinned closures must not have fields rewritten";
  EXPECT_EQ(intOf(Leaf1), 10);
  EXPECT_EQ(intOf(Leaf2), 20);
}

TEST_F(GcFixture, PinnedClosureRetainedBytesReported) {
  Object *Rec = newPair(Root, newInt(Root, 1), newInt(Root, 2));
  Root->addPinned(Rec, 0);
  GcOutcome Out = GC.collectChain(Root, Roots);
  // Two refs (16B each) + pair (24B) — the space cost of entanglement.
  EXPECT_EQ(Out.BytesInPlace, 16 + 16 + 24);
}

TEST_F(GcFixture, RootReachingPinnedClosureDoesNotCopyIt) {
  Object *Rec = newPair(Root, newInt(Root, 1), newInt(Root, 2));
  Root->addPinned(Rec, 0);
  Slot Ref = Object::fromPointer(Rec);
  Roots.pushSlot(&Ref);
  GC.collectChain(Root, Roots);
  EXPECT_EQ(Object::asPointer(Ref), Rec) << "roots to pinned stay put";
  Roots.popSlot(&Ref);
}

TEST_F(GcFixture, MixedCopyAndInPlace) {
  // A rooted object pointing at a pinned object: the rooted one moves, the
  // pinned one stays, and the moved copy's field still points at it.
  Object *Pinned = newInt(Root, 5);
  Root->addPinned(Pinned, 0);
  Object *Holder = newPair(Root, Pinned, Pinned);
  Slot Ref = Object::fromPointer(Holder);
  Roots.pushSlot(&Ref);

  GC.collectChain(Root, Roots);
  Object *NewHolder = Object::asPointer(Ref);
  EXPECT_NE(NewHolder, Holder);
  EXPECT_EQ(Object::asPointer(NewHolder->getSlot(0)), Pinned);
  EXPECT_EQ(intOf(Pinned), 5);
  Roots.popSlot(&Ref);
}

TEST_F(GcFixture, SharedHeapsAreNotCollected) {
  // A heap with active forks is shared; the chain must stop below it.
  Heap *A = HM.forkChild(Root);
  Root->setActiveForks(2);
  Object *InRoot = newInt(Root, 1); // Unrooted, but must survive.
  Object *InA = newInt(A, 2);       // Unrooted, in the leaf chain: dies.
  (void)InA;

  GcOutcome Out = GC.collectChain(A, Roots);
  EXPECT_EQ(Out.HeapsCollected, 1) << "only the private leaf heap";
  EXPECT_FALSE(InRoot->isForwarded());
  EXPECT_EQ(intOf(InRoot), 1);
  Root->setActiveForks(0);
}

TEST_F(GcFixture, ChainSpansPrivateSuffix) {
  // Root(active) -> A(quiet) -> AA(quiet): collecting from AA covers A and
  // AA but not Root.
  Heap *A = HM.forkChild(Root);
  Heap *AA = HM.forkChild(A);
  Root->setActiveForks(2);
  GcOutcome Out = GC.collectChain(AA, Roots);
  EXPECT_EQ(Out.HeapsCollected, 2);
  Root->setActiveForks(0);
}

TEST_F(GcFixture, CopiedObjectsLandInTheirOwnHeap) {
  Heap *A = HM.forkChild(Root);
  Object *InRoot = newInt(Root, 1);
  Object *InA = newInt(A, 2);
  Slot R1 = Object::fromPointer(InRoot);
  Slot R2 = Object::fromPointer(InA);
  Roots.pushSlot(&R1);
  Roots.pushSlot(&R2);

  GC.collectChain(A, Roots); // Chain = {A, Root}: both private.
  EXPECT_EQ(Heap::of(Object::asPointer(R1)), Root)
      << "objects must be evacuated within their own heap (depth preserved)";
  EXPECT_EQ(Heap::of(Object::asPointer(R2)), A);
  Roots.popSlot(&R2);
  Roots.popSlot(&R1);
}

TEST_F(GcFixture, RawArrayPayloadPreserved) {
  Object *Raw = Root->allocateObject(ObjKind::RawArray, true, 16, 0);
  for (uint32_t I = 0; I < 16; ++I)
    Raw->setSlot(I, 0xdeadbeef00ull + I);
  Slot Ref = Object::fromPointer(Raw);
  Roots.pushSlot(&Ref);
  GC.collectChain(Root, Roots);
  Object *New = Object::asPointer(Ref);
  for (uint32_t I = 0; I < 16; ++I)
    EXPECT_EQ(New->getSlot(I), 0xdeadbeef00ull + I);
  Roots.popSlot(&Ref);
}

TEST_F(GcFixture, RawArraySlotsNeverTracedAsPointers) {
  // A raw array whose bits look exactly like a pointer must not be traced.
  Object *Victim = newInt(Root, 3);
  Object *Raw = Root->allocateObject(ObjKind::RawArray, true, 1, 0);
  Raw->setSlot(0, Object::fromPointer(Victim));
  Slot Ref = Object::fromPointer(Raw);
  Roots.pushSlot(&Ref);
  GC.collectChain(Root, Roots);
  // Victim was unrooted: it must be gone, and the raw slot unchanged
  // (dangling as raw bits, which is fine — it is not a pointer).
  Object *New = Object::asPointer(Ref);
  EXPECT_EQ(New->getSlot(0), Object::fromPointer(Victim));
  Roots.popSlot(&Ref);
}

TEST_F(GcFixture, TaggedIntsInArraysAreNotTraced) {
  Object *Arr = Root->allocateObject(ObjKind::Array, true, 4, 0);
  for (uint32_t I = 0; I < 4; ++I)
    Arr->setSlot(I, (I << 1) | 1);
  Slot Ref = Object::fromPointer(Arr);
  Roots.pushSlot(&Ref);
  GcOutcome Out = GC.collectChain(Root, Roots);
  EXPECT_EQ(Out.ObjectsCopied, 1);
  Object *New = Object::asPointer(Ref);
  for (uint32_t I = 0; I < 4; ++I)
    EXPECT_EQ(New->getSlot(I), (I << 1) | 1);
  Roots.popSlot(&Ref);
}

TEST_F(GcFixture, LargeObjectSurvives) {
  uint32_t Slots = (Chunk::SizeBytes / 8) + 10; // Forces a large chunk.
  Object *Big = Root->allocateObject(ObjKind::RawArray, true, Slots, 0);
  Big->setSlot(0, 123);
  Big->setSlot(Slots - 1, 456);
  Slot Ref = Object::fromPointer(Big);
  Roots.pushSlot(&Ref);
  GC.collectChain(Root, Roots);
  Object *New = Object::asPointer(Ref);
  EXPECT_EQ(New->getSlot(0), 123u);
  EXPECT_EQ(New->getSlot(Slots - 1), 456u);
  Roots.popSlot(&Ref);
}

TEST_F(GcFixture, RepeatedCollectionsStable) {
  Object *A = newInt(Root, 1);
  Object *B = newInt(Root, 2);
  Object *P = newPair(Root, A, B);
  Slot Ref = Object::fromPointer(P);
  Roots.pushSlot(&Ref);
  for (int I = 0; I < 5; ++I) {
    for (int J = 0; J < 100; ++J)
      newInt(Root, J);
    GC.collectChain(Root, Roots);
    Object *Cur = Object::asPointer(Ref);
    EXPECT_EQ(intOf(Object::asPointer(Cur->getSlot(0))), 1);
    EXPECT_EQ(intOf(Object::asPointer(Cur->getSlot(1))), 2);
  }
  Roots.popSlot(&Ref);
}

TEST_F(GcFixture, MarksClearedAfterCollection) {
  Object *Rec = newPair(Root, newInt(Root, 1), newInt(Root, 2));
  Root->addPinned(Rec, 0);
  GC.collectChain(Root, Roots);
  EXPECT_FALSE(Rec->isMarked()) << "transient marks must be cleared";
  EXPECT_TRUE(Rec->isPinned()) << "pins persist across collections";
  // Second collection reproduces the in-place set from scratch.
  GcOutcome Out = GC.collectChain(Root, Roots);
  EXPECT_EQ(Out.ObjectsInPlace, 3);
}

TEST_F(GcFixture, UnpinnedGarbageDiesAtNextCollection) {
  Object *O = newInt(Root, 9);
  Root->addPinned(O, 0);
  GC.collectChain(Root, Roots);
  EXPECT_FALSE(O->isForwarded());

  // Simulate the join reaching the unpin depth.
  Heap *Dummy = HM.forkChild(Root); // Gives join something to do.
  HM.join(Root, Dummy);
  O->unpin();
  Root->Pinned.clear();

  GcOutcome Out = GC.collectChain(Root, Roots);
  EXPECT_EQ(Out.ObjectsInPlace, 0);
  EXPECT_EQ(Out.ObjectsCopied, 0);
}
