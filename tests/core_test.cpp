//===- tests/core_test.cpp - Runtime + entanglement integration tests -----===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace mpl;
using namespace mpl::ops;

namespace {
rt::Config cfg(int Workers, em::Mode M = em::Mode::Manage) {
  rt::Config C;
  C.NumWorkers = Workers;
  C.Mode = M;
  C.Profile = false;
  C.GcMinBytes = 1 << 16; // Small budget: tests exercise GC aggressively.
  return C;
}
} // namespace

TEST(RuntimeTest, RunsAndAllocates) {
  rt::Runtime R(cfg(1));
  int64_t Got = 0;
  R.run([&] {
    Local Ref(newRef(boxInt(41)));
    refSet(Ref.get(), boxInt(unboxInt(refGet(Ref.get())) + 1));
    Got = unboxInt(refGet(Ref.get()));
  });
  EXPECT_EQ(Got, 42);
}

TEST(RuntimeTest, SurvivesForcedCollection) {
  rt::Runtime R(cfg(1));
  R.run([&] {
    Local List(nullptr);
    // Build a 100-node list, GC'ing along the way.
    for (int I = 0; I < 100; ++I) {
      Local Node(newRecord(0b10, {boxInt(I), List.slot()}));
      List.set(Node.get());
      rt::Runtime::current()->maybeCollect(/*Force=*/true);
    }
    // Verify the whole list.
    Object *Cur = List.get();
    for (int I = 99; I >= 0; --I) {
      ASSERT_NE(Cur, nullptr);
      EXPECT_EQ(unboxInt(recGet(Cur, 0)), I);
      Cur = Object::asPointer(recGet(Cur, 1));
    }
    EXPECT_EQ(Cur, nullptr);
  });
}

TEST(RuntimeTest, GarbageCollectedUnderPressure) {
  rt::Runtime R(cfg(1));
  R.run([&] {
    for (int I = 0; I < 200000; ++I)
      newRecord(0, {boxInt(I)}); // All garbage.
  });
  // The policy must have kept residency bounded well below total
  // allocation (200000 * 16B = 3.2MB minimum allocated).
  EXPECT_LT(rt::Runtime::residencyBytes(), 64 << 20);
  EXPECT_GT(StatRegistry::get().valueOf("gc.collections"), 0);
}

TEST(RuntimeTest, ParReturnsBothResults) {
  rt::Runtime R(cfg(2));
  int64_t Sum = 0;
  R.run([&] {
    auto [A, B] = rt::par([&] { return boxInt(10); },
                          [&] { return boxInt(32); });
    Sum = unboxInt(A) + unboxInt(B);
  });
  EXPECT_EQ(Sum, 42);
}

TEST(RuntimeTest, ParResultObjectsMergeIntoParent) {
  rt::Runtime R(cfg(2));
  R.run([&] {
    auto [A, B] = rt::par([&] { return Object::fromPointer(newRef(boxInt(1))); },
                          [&] { return Object::fromPointer(newRef(boxInt(2))); });
    Local LA(A), LB(B);
    // Results were allocated in child heaps; after the join they live in
    // the parent's heap and are freely usable.
    Heap *Cur = rt::Runtime::ctx()->CurrentHeap;
    EXPECT_EQ(Heap::of(LA.get()), Cur);
    EXPECT_EQ(Heap::of(LB.get()), Cur);
    EXPECT_EQ(unboxInt(refGet(LA.get())), 1);
    EXPECT_EQ(unboxInt(refGet(LB.get())), 2);
    // And they survive a collection in the merged heap.
    rt::Runtime::current()->maybeCollect(/*Force=*/true);
    EXPECT_EQ(unboxInt(refGet(LA.get())), 1);
    EXPECT_EQ(unboxInt(refGet(LB.get())), 2);
  });
}

static int64_t parFib(int64_t N) {
  if (N < 2)
    return N;
  if (N < 10)
    return parFib(N - 1) + parFib(N - 2);
  auto [A, B] = rt::par([&] { return boxInt(parFib(N - 1)); },
                        [&] { return boxInt(parFib(N - 2)); });
  return unboxInt(A) + unboxInt(B);
}

TEST(RuntimeTest, NestedParFib) {
  for (int Workers : {1, 2, 4}) {
    rt::Runtime R(cfg(Workers));
    int64_t Got = 0;
    R.run([&] { Got = parFib(20); });
    EXPECT_EQ(Got, 6765) << "workers=" << Workers;
  }
}

TEST(RuntimeTest, ParForAccumulatesViaArray) {
  rt::Runtime R(cfg(2));
  int64_t Sum = 0;
  R.run([&] {
    constexpr int64_t N = 5000;
    Local Arr(newArray(N, boxInt(0)));
    rt::parFor(0, N, 64, [&](int64_t I) {
      arrSet(Arr.get(), static_cast<uint32_t>(I), boxInt(I));
    });
    for (int64_t I = 0; I < N; ++I)
      Sum += unboxInt(arrGet(Arr.get(), static_cast<uint32_t>(I)));
  });
  EXPECT_EQ(Sum, 5000 * 4999 / 2);
}

TEST(RuntimeTest, BranchAllocationsSurviveBranchGc) {
  rt::Runtime R(cfg(2));
  R.run([&] {
    auto [A, B] = rt::par(
        [&] {
          Local List(nullptr);
          for (int I = 0; I < 500; ++I) {
            Local Node(newRecord(0b10, {boxInt(I), List.slot()}));
            List.set(Node.get());
            if (I % 100 == 0)
              rt::Runtime::current()->maybeCollect(/*Force=*/true);
          }
          int64_t Count = 0;
          for (Object *Cur = List.get(); Cur;
               Cur = Object::asPointer(recGet(Cur, 1)))
            ++Count;
          return boxInt(Count);
        },
        [&] { return boxInt(0); });
    EXPECT_EQ(unboxInt(A), 500);
    (void)B;
  });
}

//===----------------------------------------------------------------------===//
// Entanglement scenarios
//===----------------------------------------------------------------------===//

TEST(EntanglementTest, DisentangledProgramTriggersNoBarrierEvents) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg(2));
  R.run([&] {
    Local Arr(newArray(1000, boxInt(0)));
    rt::parFor(0, 1000, 32, [&](int64_t I) {
      arrSet(Arr.get(), static_cast<uint32_t>(I), boxInt(I * 2));
    });
    int64_t Sum = 0;
    for (uint32_t I = 0; I < 1000; ++I)
      Sum += unboxInt(arrGet(Arr.get(), I));
    EXPECT_EQ(Sum, 999000);
  });
  EXPECT_EQ(StatRegistry::get().valueOf("em.reads.entangled"), 0);
  EXPECT_EQ(StatRegistry::get().valueOf("em.pins.cross"), 0);
}

TEST(EntanglementTest, DownPointerWritePins) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg(1));
  R.run([&] {
    Local Shared(newRef(boxInt(0))); // Depth 0.
    rt::par(
        [&] {
          // Allocated at depth 1, published into a depth-0 ref: this is a
          // down-pointer; the write barrier must pin the boxed value.
          Local Mine(newRef(boxInt(123)));
          refSet(Shared.get(), Object::fromPointer(Mine.get()));
          EXPECT_TRUE(Mine.get()->isPinned());
          EXPECT_EQ(Mine.get()->unpinDepth(), 0u);
          return unit();
        },
        [&] { return unit(); });
    // After the join back to depth 0, the pin must be released.
    Object *Published = Object::asPointer(refGet(Shared.get()));
    ASSERT_NE(Published, nullptr);
    EXPECT_FALSE(Published->isPinned());
    EXPECT_EQ(unboxInt(refGet(Published)), 123);
  });
  EXPECT_GT(StatRegistry::get().valueOf("em.pins.down"), 0);
  EXPECT_GT(StatRegistry::get().valueOf("em.unpins"), 0);
}

TEST(EntanglementTest, EntangledReadDetectedAndManaged) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg(1)); // One worker: branch A fully precedes branch B.
  int64_t SeenByB = -1;
  R.run([&] {
    Local Shared(newRef(boxInt(0)));
    rt::par(
        [&] {
          Local Mine(newRef(boxInt(77)));
          refSet(Shared.get(), Object::fromPointer(Mine.get()));
          return unit();
        },
        [&] {
          // B reads A's object through the shared ref while A's heap is
          // still a concurrent sibling: an entangled read.
          Slot V = refGet(Shared.get());
          Object *P = Object::asPointer(V);
          if (P)
            SeenByB = unboxInt(refGet(P));
          return unit();
        });
  });
  EXPECT_EQ(SeenByB, 77);
  EXPECT_GT(StatRegistry::get().valueOf("em.reads.entangled"), 0);
}

TEST(EntanglementTest, PinnedObjectSurvivesPublisherGc) {
  rt::Runtime R(cfg(1));
  int64_t SeenByB = -1;
  R.run([&] {
    Local Shared(newRef(boxInt(0)));
    rt::par(
        [&] {
          Local Mine(newRef(boxInt(55)));
          refSet(Shared.get(), Object::fromPointer(Mine.get()));
          // Publisher drops its own reference and collects: the pin alone
          // must keep the published object alive and in place.
          Object *Raw = Mine.get();
          Mine.set(nullptr);
          for (int I = 0; I < 50000; ++I)
            newRecord(0, {boxInt(I)});
          rt::Runtime::current()->maybeCollect(/*Force=*/true);
          EXPECT_FALSE(Raw->isForwarded());
          return unit();
        },
        [&] {
          Slot V = refGet(Shared.get());
          Object *P = Object::asPointer(V);
          if (P)
            SeenByB = unboxInt(refGet(P));
          return unit();
        });
  });
  EXPECT_EQ(SeenByB, 55);
}

TEST(EntanglementTest, PinnedClosureTraversableByReader) {
  rt::Runtime R(cfg(1));
  int64_t Sum = 0;
  R.run([&] {
    Local Shared(newRef(boxInt(0)));
    rt::par(
        [&] {
          // Publish an immutable record with two boxed fields: the reader
          // will traverse the record's immutable fields barrier-free, so
          // the whole closure must survive this branch's GC in place.
          Local F1(newRef(boxInt(30)));
          Local F2(newRef(boxInt(12)));
          Local Rec(newRecord(0b11,
                              {Object::fromPointer(F1.get()),
                               Object::fromPointer(F2.get())}));
          refSet(Shared.get(), Object::fromPointer(Rec.get()));
          F1.set(nullptr);
          F2.set(nullptr);
          Rec.set(nullptr);
          for (int I = 0; I < 20000; ++I)
            newRecord(0, {boxInt(I)});
          rt::Runtime::current()->maybeCollect(/*Force=*/true);
          return unit();
        },
        [&] {
          Object *Rec = Object::asPointer(refGet(Shared.get()));
          if (Rec) {
            Object *F1 = Object::asPointer(recGet(Rec, 0));
            Object *F2 = Object::asPointer(recGet(Rec, 1));
            Sum = unboxInt(refGet(F1)) + unboxInt(refGet(F2));
          }
          return unit();
        });
  });
  EXPECT_EQ(Sum, 42);
}

TEST(EntanglementTest, StickyPinRetainsOverwrittenValue) {
  rt::Runtime R(cfg(1));
  int64_t Seen = -1;
  R.run([&] {
    Local Shared(newRef(boxInt(0)));
    rt::par(
        [&] {
          Local P(newRef(boxInt(1)));
          refSet(Shared.get(), Object::fromPointer(P.get()));
          Object *RawP = P.get();
          // Overwrite the published field; the pin must be sticky so a
          // reader that loaded the old pointer earlier stays safe.
          Local Q(newRef(boxInt(2)));
          refSet(Shared.get(), Object::fromPointer(Q.get()));
          EXPECT_TRUE(RawP->isPinned()) << "pins are sticky until join";
          P.set(nullptr);
          rt::Runtime::current()->maybeCollect(/*Force=*/true);
          EXPECT_FALSE(RawP->isForwarded());
          Seen = unboxInt(refGet(RawP));
          return unit();
        },
        [&] { return unit(); });
  });
  EXPECT_EQ(Seen, 1);
}

TEST(EntanglementTest, DetectModeRejectsEntangledRead) {
  auto EntangledProgram = [] {
    rt::Runtime R(cfg(1, em::Mode::Detect));
    R.run([&] {
      Local Shared(newRef(boxInt(0)));
      rt::par(
          [&] {
            Local Mine(newRef(boxInt(1)));
            refSet(Shared.get(), Object::fromPointer(Mine.get()));
            return unit();
          },
          [&] {
            Slot V = refGet(Shared.get()); // Entangled: must reject.
            (void)V;
            return unit();
          });
    });
  };
  // The rejection is a structured, recoverable error (usable as a CI
  // gate), not a process abort.
  EXPECT_THROW(EntangledProgram(), em::EntanglementError);
}

TEST(EntanglementTest, DetectModeAllowsDisentangledPrograms) {
  rt::Runtime R(cfg(2, em::Mode::Detect));
  int64_t Got = 0;
  R.run([&] { Got = parFib(16); });
  EXPECT_EQ(Got, 987);
}

TEST(EntanglementTest, CrossPointerStorePins) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg(1));
  R.run([&] {
    Local SharedA(newRef(boxInt(0))); // Will hold A's object.
    Local SharedB(newRef(boxInt(0))); // B stores A's object + its own.
    rt::par(
        [&] {
          Local Mine(newRef(boxInt(9)));
          refSet(SharedA.get(), Object::fromPointer(Mine.get()));
          return unit();
        },
        [&] {
          // B picks up A's entangled object and stores it into a record
          // field of its OWN fresh mutable record: a cross-pointer.
          Object *FromA = Object::asPointer(refGet(SharedA.get()));
          if (FromA) {
            Local LA(FromA);
            Local Rec(newMutRecord(0b1, {LA.slot()}));
            // Also publish B's record down to depth 0.
            refSet(SharedB.get(), Object::fromPointer(Rec.get()));
          }
          return unit();
        });
    Object *Rec = Object::asPointer(refGet(SharedB.get()));
    ASSERT_NE(Rec, nullptr);
    Object *Inner = Object::asPointer(recGetMut(Rec, 0));
    ASSERT_NE(Inner, nullptr);
    EXPECT_EQ(unboxInt(refGet(Inner)), 9);
  });
  EXPECT_GT(StatRegistry::get().valueOf("em.reads.entangled"), 0);
}

TEST(EntanglementTest, MultiWorkerEntangledStress) {
  // Real concurrency: siblings exchange freshly allocated objects through
  // a shared array while collecting aggressively. Checks value integrity.
  rt::Runtime R(cfg(4));
  constexpr int64_t N = 2000;
  int64_t BadValues = 0;
  R.run([&] {
    Local Board(newArray(N, boxInt(0)));
    rt::par(
        [&] {
          for (int64_t I = 0; I < N; ++I) {
            Local Box(newRef(boxInt(I)));
            arrSet(Board.get(), static_cast<uint32_t>(I),
                   Object::fromPointer(Box.get()));
          }
          rt::Runtime::current()->maybeCollect(/*Force=*/true);
          return unit();
        },
        [&] {
          for (int64_t Round = 0; Round < 3; ++Round)
            for (int64_t I = 0; I < N; ++I) {
              Slot V = arrGet(Board.get(), static_cast<uint32_t>(I));
              if (Object *P = Object::asPointer(V)) {
                int64_t Got = unboxInt(refGet(P));
                if (Got != I)
                  ++BadValues;
              }
            }
          return unit();
        });
  });
  EXPECT_EQ(BadValues, 0);
}
