//===- tests/obs_test.cpp - Tracer, metrics sampler and exporter tests ----===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Covers the observability layer in isolation (src/obs depends only on
// support, so these tests drive the Tracer / MetricsSampler directly):
// ring wrap and the dropped-event counter, per-thread event ordering, the
// well-formedness of the Chrome trace-event export (parsed back with
// support/Json), sampler monotonicity, and the everything-disabled smoke.
//
//===----------------------------------------------------------------------===//

#include "chaos/ChaosSchedule.h"
#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "obs/Exposition.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Span.h"
#include "obs/Trace.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "workloads/Entangled.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace mpl;

namespace {

/// Every test arms/disarms the process-wide tracer; serialize the state.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::Tracer::get().disable();
    obs::Tracer::get().clear();
    obs::MetricsSampler::get().stop();
    obs::MetricsSampler::get().clearSeries();
  }
  void TearDown() override { SetUp(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Disabled path
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, DisabledEmitsNothing) {
  ASSERT_FALSE(obs::traceEnabled());
  for (int I = 0; I < 1000; ++I)
    obs::emit(obs::Ev::Fork, static_cast<uint64_t>(I));
  EXPECT_EQ(obs::Tracer::get().totalEvents(), 0u);
  EXPECT_EQ(obs::Tracer::get().totalDropped(), 0u);
}

TEST_F(ObsTest, EnableDisableRoundTrip) {
  obs::Tracer::get().enable(obs::TraceOptions{});
  EXPECT_TRUE(obs::traceEnabled());
  obs::emit(obs::Ev::Fork);
  obs::Tracer::get().disable();
  EXPECT_FALSE(obs::traceEnabled());
  obs::emit(obs::Ev::Fork); // Must be dropped at the gate.
  EXPECT_EQ(obs::Tracer::get().totalEvents(), 1u);
}

//===----------------------------------------------------------------------===//
// Ring wrap / overflow
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, RingWrapKeepsNewestAndCountsDropped) {
  obs::TraceOptions O;
  O.Capacity = 64;
  obs::Tracer::get().enable(O);
  const uint64_t Total = 64 * 3 + 17;
  for (uint64_t I = 0; I < Total; ++I)
    obs::emit(obs::Ev::Pin, /*A0=*/I);
  obs::Tracer::get().disable();

  obs::TraceBuffer *B = obs::Tracer::get().threadBuffer();
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->capacity(), 64u);
  EXPECT_EQ(B->head(), Total);
  EXPECT_EQ(B->size(), 64u);
  EXPECT_EQ(B->dropped(), Total - 64);
  EXPECT_EQ(obs::Tracer::get().totalDropped(), Total - 64);

  // The retained window is exactly the newest 64 events, uncorrupted and
  // in emission order.
  uint64_t Expect = Total - 64;
  for (uint64_t I = B->first(); I < B->head(); ++I, ++Expect) {
    const obs::TraceEvent &E = B->at(I);
    EXPECT_EQ(E.Kind, static_cast<uint16_t>(obs::Ev::Pin));
    EXPECT_EQ(E.Arg0, Expect);
  }
}

TEST_F(ObsTest, CapacityRoundsUpToPowerOfTwo) {
  obs::TraceOptions O;
  O.Capacity = 100; // Not a power of two.
  obs::Tracer::get().enable(O);
  obs::emit(obs::Ev::Fork);
  obs::Tracer::get().disable();
  EXPECT_EQ(obs::Tracer::get().threadBuffer()->capacity(), 128u);
}

//===----------------------------------------------------------------------===//
// Per-thread ordering and track attribution
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, PerThreadEventsStayOrdered) {
  obs::Tracer::get().enable(obs::TraceOptions{});
  const int NThreads = 4, PerThread = 2000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < NThreads; ++T)
    Ts.emplace_back([T] {
      obs::labelCurrentThread(T);
      for (int I = 0; I < PerThread; ++I)
        obs::emit(obs::Ev::Steal, static_cast<uint64_t>(I),
                  static_cast<uint64_t>(T));
    });
  for (std::thread &T : Ts)
    T.join();
  obs::Tracer::get().disable();

  // One buffer per thread, each with its own monotone sequence and
  // non-decreasing timestamps.
  int BuffersSeen = 0;
  obs::Tracer::get().forEachBuffer([&](const obs::TraceBuffer &B) {
    if (B.head() == 0)
      return; // The main thread's buffer, if any.
    ++BuffersSeen;
    ASSERT_EQ(B.size(), static_cast<uint64_t>(PerThread));
    int64_t LastTs = 0;
    uint64_t Seq = 0;
    for (uint64_t I = B.first(); I < B.head(); ++I, ++Seq) {
      const obs::TraceEvent &E = B.at(I);
      EXPECT_EQ(E.Arg0, Seq);
      EXPECT_EQ(E.Arg1, static_cast<uint64_t>(B.TrackId));
      EXPECT_GE(E.TimeNs, LastTs);
      LastTs = E.TimeNs;
    }
  });
  EXPECT_EQ(BuffersSeen, NThreads);
}

//===----------------------------------------------------------------------===//
// Chrome trace export
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, ChromeTraceJsonParsesBack) {
  obs::Tracer::get().enable(obs::TraceOptions{});
  obs::labelCurrentThread(0);
  obs::emit(obs::Ev::GcBegin, 2);
  obs::emit(obs::Ev::GcMarkBegin);
  obs::emit(obs::Ev::GcMarkEnd, 5);
  obs::emit(obs::Ev::GcEnd, 1024, 4096);
  obs::emit(obs::Ev::Steal, 3);
  obs::emit(obs::Ev::Pin, 64, 1);
  obs::Tracer::get().disable();

  std::string Text = obs::Tracer::get().chromeTraceJson();
  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(Text, Doc, Err)) << Err << "\n" << Text;
  ASSERT_EQ(Doc.K, json::Value::Kind::Object);

  const json::Value *Evs = Doc.field("traceEvents");
  ASSERT_NE(Evs, nullptr);
  ASSERT_EQ(Evs->K, json::Value::Kind::Array);

  int NBegin = 0, NEnd = 0, NInstant = 0, NMeta = 0;
  bool SawSteal = false, SawPin = false, SawGcSlice = false;
  for (const json::Value &E : Evs->Items) {
    const json::Value *Ph = E.field("ph");
    ASSERT_NE(Ph, nullptr);
    ASSERT_NE(E.field("pid"), nullptr);
    ASSERT_NE(E.field("tid"), nullptr);
    if (Ph->StrV == "M") {
      ++NMeta;
      continue;
    }
    ASSERT_NE(E.field("ts"), nullptr);
    ASSERT_NE(E.field("name"), nullptr);
    if (Ph->StrV == "B")
      ++NBegin;
    else if (Ph->StrV == "E")
      ++NEnd;
    else if (Ph->StrV == "i")
      ++NInstant;
    if (E.field("name")->StrV == "steal")
      SawSteal = true;
    if (E.field("name")->StrV == "pin")
      SawPin = true;
    if (E.field("name")->StrV == "gc" && Ph->StrV == "B")
      SawGcSlice = true;
  }
  EXPECT_EQ(NBegin, NEnd) << "unbalanced duration slices break Perfetto";
  EXPECT_EQ(NBegin, 2); // gc + gc_mark.
  EXPECT_EQ(NInstant, 2); // steal + pin.
  EXPECT_GE(NMeta, 1);    // thread_name for worker 0.
  EXPECT_TRUE(SawSteal);
  EXPECT_TRUE(SawPin);
  EXPECT_TRUE(SawGcSlice);
}

TEST_F(ObsTest, ChromeTraceFlowEventsExport) {
  obs::Tracer::get().enable(obs::TraceOptions{});
  obs::labelCurrentThread(0);
  obs::emit(obs::Ev::FlowOut, 7);
  obs::emit(obs::Ev::FlowIn, 7);
  obs::Tracer::get().disable();

  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(obs::Tracer::get().chromeTraceJson(), Doc, Err))
      << Err;
  int NOut = 0, NIn = 0;
  for (const json::Value &E : Doc.field("traceEvents")->Items) {
    const std::string &P = E.field("ph")->StrV;
    if (P != "s" && P != "f")
      continue;
    // Flow events bind by (cat, id); Perfetto drops flows without both.
    ASSERT_NE(E.field("cat"), nullptr);
    EXPECT_EQ(E.field("cat")->StrV, "spans");
    ASSERT_NE(E.field("id"), nullptr);
    EXPECT_TRUE(E.field("id")->isNumber());
    EXPECT_EQ(static_cast<uint64_t>(E.field("id")->NumV), 7u);
    EXPECT_EQ(E.field("name")->StrV, "task_flow");
    if (P == "s") {
      ++NOut;
    } else {
      ++NIn;
      // bp:"e" binds the inbound flow to the *enclosing* slice.
      ASSERT_NE(E.field("bp"), nullptr);
      EXPECT_EQ(E.field("bp")->StrV, "e");
    }
  }
  EXPECT_EQ(NOut, 1);
  EXPECT_EQ(NIn, 1);
}

TEST_F(ObsTest, ChromeTraceRoundTripMatchesBufferCounts) {
  // Real workload with tracer + span ledger armed: every retained event —
  // including the span ledger's task_flow edges — must survive the export
  // with its phase intact, so the JSON's per-phase counts equal the ring
  // buffers' per-kind counts.
  obs::Tracer::get().enable(obs::TraceOptions{});
  obs::SpanLedger::get().enable();
  {
    rt::Config Cfg;
    Cfg.NumWorkers = 2;
    Cfg.Profile = true;
    rt::Runtime R(Cfg);
    R.run([] { wl::fib(18, 5); });
  }
  obs::SpanLedger::get().disable();
  obs::Tracer::get().disable();
  ASSERT_EQ(obs::Tracer::get().totalDropped(), 0u);

  uint64_t BufFlowOut = 0, BufFlowIn = 0;
  obs::Tracer::get().forEachBuffer([&](const obs::TraceBuffer &B) {
    for (uint64_t I = B.first(); I < B.head(); ++I) {
      uint16_t K = B.at(I).Kind;
      if (K == static_cast<uint16_t>(obs::Ev::FlowOut))
        ++BufFlowOut;
      else if (K == static_cast<uint16_t>(obs::Ev::FlowIn))
        ++BufFlowIn;
    }
  });
  ASSERT_GT(BufFlowOut, 0u);
  // Two FlowOuts per fork; one FlowIn when each spawned task starts.
  EXPECT_EQ(BufFlowIn, BufFlowOut);

  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(obs::Tracer::get().chromeTraceJson(), Doc, Err))
      << Err;
  uint64_t NOut = 0, NIn = 0;
  for (const json::Value &E : Doc.field("traceEvents")->Items) {
    const std::string &P = E.field("ph")->StrV;
    if (P == "s")
      ++NOut;
    else if (P == "f")
      ++NIn;
  }
  EXPECT_EQ(NOut, BufFlowOut);
  EXPECT_EQ(NIn, BufFlowIn);
}

TEST_F(ObsTest, ExporterDropsOrphanedEndEvents) {
  // A wrapped ring can retain an End whose Begin was overwritten; the
  // exporter must drop it (Perfetto rejects E-without-B timelines).
  obs::TraceOptions O;
  O.Capacity = 4;
  obs::Tracer::get().enable(O);
  obs::emit(obs::Ev::GcBegin);       // Will be overwritten...
  obs::emit(obs::Ev::GcEnd);         // ...leaving this End orphaned.
  obs::emit(obs::Ev::Pin);
  obs::emit(obs::Ev::Pin);
  obs::emit(obs::Ev::Pin); // Wraps: GcBegin is gone.
  obs::Tracer::get().disable();

  std::string Text = obs::Tracer::get().chromeTraceJson();
  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(Text, Doc, Err)) << Err;
  for (const json::Value &E : Doc.field("traceEvents")->Items)
    EXPECT_NE(E.field("ph")->StrV, "E") << "orphaned E survived export";
}

TEST_F(ObsTest, DroppedCountIsExported) {
  obs::TraceOptions O;
  O.Capacity = 8;
  obs::Tracer::get().enable(O);
  for (int I = 0; I < 20; ++I)
    obs::emit(obs::Ev::Fork);
  obs::Tracer::get().disable();

  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(obs::Tracer::get().chromeTraceJson(), Doc, Err));
  const json::Value *Other = Doc.field("otherData");
  ASSERT_NE(Other, nullptr);
  const json::Value *Dropped = Other->field("dropped_events");
  ASSERT_NE(Dropped, nullptr);
  EXPECT_EQ(Dropped->StrV, "12");
}

//===----------------------------------------------------------------------===//
// Metrics sampler
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, TraceDroppedGaugeIsSampled) {
  // Every sample carries the tracer's cumulative drop counter so a metrics
  // series reveals *when* a trace went gappy, not just that it did.
  obs::TraceOptions O;
  O.Capacity = 8;
  obs::Tracer::get().enable(O);
  for (int I = 0; I < 20; ++I)
    obs::emit(obs::Ev::Fork);
  obs::Tracer::get().disable();

  auto &S = obs::MetricsSampler::get();
  S.sampleOnce();
  std::vector<obs::MetricsSample> Series = S.series();
  ASSERT_FALSE(Series.empty());
  bool Found = false;
  for (const auto &[Name, V] : Series.back().Gauges)
    if (Name == "obs.trace.dropped") {
      Found = true;
      EXPECT_EQ(V, 12);
    }
  EXPECT_TRUE(Found) << "obs.trace.dropped gauge missing from sample";
}

TEST_F(ObsTest, SamplerSeriesIsMonotoneAndGaugesAreRead) {
  auto &S = obs::MetricsSampler::get();
  std::atomic<int64_t> Depth{0};
  int Id = S.registerGauge("test.depth", [&] { return Depth.load(); });

  Depth = 3;
  S.sampleOnce();
  Depth = 7;
  S.sampleOnce();
  Depth = 7;
  S.sampleOnce();
  S.unregisterGauge(Id);

  std::vector<obs::MetricsSample> Series = S.series();
  ASSERT_EQ(Series.size(), 3u);
  int64_t LastTs = 0;
  for (const obs::MetricsSample &M : Series) {
    EXPECT_GE(M.TimeNs, LastTs) << "sampler timestamps must be monotone";
    LastTs = M.TimeNs;
  }
  auto gauge = [](const obs::MetricsSample &M, const std::string &N) {
    for (const auto &[Name, V] : M.Gauges)
      if (Name == N)
        return V;
    return int64_t(-1);
  };
  EXPECT_EQ(gauge(Series[0], "test.depth"), 3);
  EXPECT_EQ(gauge(Series[1], "test.depth"), 7);
  EXPECT_EQ(gauge(Series[2], "test.depth"), 7);
}

TEST_F(ObsTest, BackgroundSamplerCollectsAndStops) {
  auto &S = obs::MetricsSampler::get();
  S.start(/*IntervalUs=*/200);
  EXPECT_TRUE(S.running());
  while (S.sampleCount() < 3)
    std::this_thread::yield();
  S.stop();
  EXPECT_FALSE(S.running());
  size_t N = S.sampleCount();
  EXPECT_GE(N, 3u);
  // Stopped means stopped: the count may not advance further.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(S.sampleCount(), N);
}

TEST_F(ObsTest, MetricsJsonParsesBackWithHistograms) {
  Histogram H("obs.test.latency.ns");
  H.record(100);
  H.record(100000);
  obs::MetricsSampler::get().sampleOnce();

  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(obs::MetricsSampler::get().jsonDump(), Doc, Err))
      << Err;
  const json::Value *Samples = Doc.field("samples");
  ASSERT_NE(Samples, nullptr);
  ASSERT_EQ(Samples->Items.size(), 1u);
  ASSERT_NE(Samples->Items[0].field("em"), nullptr);
  ASSERT_NE(Samples->Items[0].field("em")->field("live_pinned_bytes"),
            nullptr);

  const json::Value *Hists = Doc.field("histograms");
  ASSERT_NE(Hists, nullptr);
  bool Found = false;
  for (const json::Value &HV : Hists->Items)
    if (HV.field("name")->StrV == "obs.test.latency.ns") {
      Found = true;
      EXPECT_EQ(static_cast<int64_t>(HV.field("count")->NumV), 2);
      EXPECT_EQ(static_cast<int64_t>(HV.field("sum")->NumV), 100100);
    }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Histograms (satellite of the same layer; exercised via obs export above,
// pinned down directly here)
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, HistogramBucketsAndQuantiles) {
  Histogram H("obs.test.hist");
  for (int I = 0; I < 100; ++I)
    H.record(1000); // bucket of 1000 = bit_width 10.
  H.record(0);      // Non-positive values land in bucket 0.
  H.record(-5);
  EXPECT_EQ(H.count(), 102u);
  EXPECT_EQ(H.sum(), 100 * 1000 + 0 + (-5));
  int64_t P50 = H.approxQuantile(0.5);
  EXPECT_GE(P50, 512);
  EXPECT_LE(P50, 1024);
}

TEST_F(ObsTest, HistogramRegistryFindsLiveHistograms) {
  size_t Before = 0;
  HistogramRegistry::get().forEach([&](const Histogram &) { ++Before; });
  {
    Histogram H("obs.test.scoped");
    size_t During = 0;
    HistogramRegistry::get().forEach([&](const Histogram &) { ++During; });
    EXPECT_EQ(During, Before + 1);
  }
  size_t After = 0;
  HistogramRegistry::get().forEach([&](const Histogram &) { ++After; });
  EXPECT_EQ(After, Before);
}

//===----------------------------------------------------------------------===//
// Stats registry race fix: dynamic registration from worker threads
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, StatRegistrationIsThreadSafe) {
  // Before the registry lock, concurrent Stat construction raced the
  // vector push_back (and any concurrent report()). Hammer it.
  // Stat keeps the name pointer, so dynamic Stats need static storage.
  static const char *DynNames[8] = {
      "obs.test.dyn.t0", "obs.test.dyn.t1", "obs.test.dyn.t2",
      "obs.test.dyn.t3", "obs.test.dyn.t4", "obs.test.dyn.t5",
      "obs.test.dyn.t6", "obs.test.dyn.t7"};
  std::vector<std::thread> Ts;
  std::atomic<bool> Go{false};
  for (int T = 0; T < 8; ++T)
    Ts.emplace_back([&Go, T] {
      while (!Go.load())
        std::this_thread::yield();
      for (int I = 0; I < 200; ++I) {
        Stat S(DynNames[T]);
        S.add(I);
        (void)StatRegistry::get().valueOf("obs.test.dyn.t0");
      }
    });
  Go = true;
  for (std::thread &T : Ts)
    T.join();
  // All temporaries unregistered themselves on destruction.
  EXPECT_EQ(StatRegistry::get().valueOf("obs.test.dyn.t0"), 0);
}

//===----------------------------------------------------------------------===//
// Entanglement profiler (obs/Profile.h)
//===----------------------------------------------------------------------===//

namespace {

/// The profiler is process-global; every test starts and ends disarmed.
class ProfileTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::Profiler::get().disable();
    obs::Profiler::get().reset();
  }
  void TearDown() override { SetUp(); }
};

rt::Config workerCfg(int Workers) {
  rt::Config C;
  C.NumWorkers = Workers;
  C.Profile = false;
  C.GcMinBytes = 1 << 16;
  return C;
}

/// Count of the named global histogram, or -1 when it does not exist yet.
int64_t histCountOf(const char *Name) {
  int64_t Out = -1;
  HistogramRegistry::get().forEach([&](const Histogram &H) {
    if (std::string(H.name()) == Name)
      Out = H.count();
  });
  return Out;
}

const obs::ProfileSiteSnap *findSite(
    const std::vector<obs::ProfileSiteSnap> &Sites, const std::string &Name) {
  for (const obs::ProfileSiteSnap &S : Sites)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

} // namespace

TEST_F(ProfileTest, SiteMacroNamesAndDefaults) {
  obs::ProfileSite &Named = MPL_SITE("test.site.named");
  EXPECT_EQ(Named.name(), "test.site.named");
  obs::ProfileSite &Anon = MPL_SITE();
  // Default name is basename:line of the registration point.
  EXPECT_NE(Anon.name().find("obs_test.cpp:"), std::string::npos);
  // The macro's static is one site per lexical occurrence: re-executing
  // the same occurrence yields the same registered site.
  auto SiteOf = [] { return &MPL_SITE("test.site.named2"); };
  obs::ProfileSite *First = SiteOf();
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(SiteOf(), First);
}

TEST_F(ProfileTest, DisabledHooksRecordNothing) {
  ASSERT_FALSE(obs::profileEnabled());
  obs::profileEvent(MPL_SITE("test.disabled"), 128, 1);
  EXPECT_TRUE(obs::Profiler::get().snapshot().empty());
}

TEST_F(ProfileTest, DisentangledRunsLeaveProfileEmpty) {
  // The tentpole's shielding property: every profiler hook sits on an
  // entanglement slow path (or is gated on entangled work), so a fully
  // disentangled suite must produce an EMPTY profile — not merely a cheap
  // one — even across forks, joins and collections.
  obs::Profiler::get().enable();
  {
    rt::Runtime R(workerCfg(2));
    R.run([] { (void)wl::fib(18, 6); });
    R.run([] {
      Local A(wl::randomInts(20000, 1 << 20, 42));
      Local S(wl::mergesortInts(A.get(), 1024));
      (void)S.get();
    });
  }
  EXPECT_TRUE(obs::Profiler::get().snapshot().empty());
  EXPECT_EQ(obs::Profiler::get().livePinCount(), 0);
  EXPECT_EQ(obs::Profiler::get().livePinBytes(), 0);
}

TEST_F(ProfileTest, DownPointerPinAttributedAndDrainedAtJoin) {
  using namespace mpl::ops;
  obs::Profiler::get().enable();
  int64_t LifetimesBefore = std::max<int64_t>(
      0, histCountOf("em.pin.lifetime.ns"));
  StatRegistry::get().resetAll();
  {
    rt::Runtime R(workerCfg(1));
    R.run([&] {
      Local Shared0(newRef(boxInt(0))); // Depth 0.
      rt::par(
          [&] {
            // Depth-1 object published into a depth-0 ref: down pointer.
            Local Mine(newRef(boxInt(5)));
            refSet(Shared0.get(), Mine.slot());
            EXPECT_TRUE(Mine.get()->isPinned());
            return unit();
          },
          [&] { return unit(); });
    });
  }
  std::vector<obs::ProfileSiteSnap> Sites = obs::Profiler::get().snapshot();
  const obs::ProfileSiteSnap *Pin = findSite(Sites, "em.pin.down");
  ASSERT_NE(Pin, nullptr);
  EXPECT_GE(Pin->Events, 1);
  EXPECT_GT(Pin->Bytes, 0);
  // The profiler observes the same chokepoint as the em counters: the
  // attributed bytes equal the counter total exactly.
  EXPECT_EQ(Pin->Bytes, StatRegistry::get().valueOf("em.pinned.bytes"));
  // Every pin was released by the join: the live-pin table drained, each
  // release recorded a lifetime both globally and at the pin's own site.
  EXPECT_EQ(obs::Profiler::get().livePinCount(), 0);
  EXPECT_EQ(obs::Profiler::get().livePinBytes(), 0);
  EXPECT_EQ(Pin->DurCount, Pin->Events);
  EXPECT_EQ(histCountOf("em.pin.lifetime.ns") - LifetimesBefore,
            Pin->DurCount);
  // The join-side site saw the unpin work.
  const obs::ProfileSiteSnap *Join = findSite(Sites, "hh.join.unpin");
  ASSERT_NE(Join, nullptr);
  EXPECT_EQ(Join->Bytes, Pin->Bytes);
}

TEST_F(ProfileTest, EntangledWorkloadsAttributeAllPinsAcrossWorkers) {
  using namespace mpl::ops;
  obs::Profiler::get().enable();
  StatRegistry::get().resetAll();
  {
    rt::Runtime R(workerCfg(2));
    R.run([] {
      Local K(wl::randomInts(20000, 5000, 23));
      (void)wl::dedup(K.get(), 256);
    });
    R.run([] { (void)wl::exchange(2000); });
  }
  int64_t PinnedBytes = StatRegistry::get().valueOf("em.pinned.bytes");
  ASSERT_GT(PinnedBytes, 0) << "workload produced no entanglement";
  int64_t Attributed = 0;
  for (const obs::ProfileSiteSnap &S : obs::Profiler::get().snapshot())
    if (S.Name.rfind("em.pin.", 0) == 0 || S.Name == "hh.pin")
      Attributed += S.Bytes;
  EXPECT_EQ(Attributed, PinnedBytes);
  EXPECT_EQ(obs::Profiler::get().livePinCount(), 0);
  EXPECT_EQ(obs::Profiler::get().livePinBytes(), 0);
}

TEST_F(ProfileTest, JsonDumpParsesBack) {
  using namespace mpl::ops;
  obs::Profiler::get().enable();
  {
    rt::Runtime R(workerCfg(2));
    R.run([] { (void)wl::exchange(500); });
  }
  std::string Dump = obs::Profiler::get().jsonDump();
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(Dump, V, Err)) << Err;
  const json::Value *Schema = V.field("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->StrV, "mpl-profile/1");
  const json::Value *Leaked = V.field("leaked_pins");
  ASSERT_NE(Leaked, nullptr);
  EXPECT_EQ(Leaked->NumV, 0);
  const json::Value *Sites = V.field("sites");
  ASSERT_NE(Sites, nullptr);
  ASSERT_TRUE(Sites->isArray());
  EXPECT_FALSE(Sites->Items.empty());
  for (const json::Value &S : Sites->Items) {
    EXPECT_NE(S.field("name"), nullptr);
    EXPECT_NE(S.field("events"), nullptr);
    EXPECT_NE(S.field("bytes"), nullptr);
  }
}

TEST_F(ProfileTest, RegistryGrowsPastSixtyFourSites) {
  obs::Profiler &P = obs::Profiler::get();
  int64_t DroppedBefore = P.sitesDropped();
  // The registry keeps raw pointers for the process lifetime, so these
  // sites are deliberately leaked (static storage duration, like the
  // function-local statics MPL_SITE makes).
  static std::vector<obs::ProfileSite *> Grown;
  if (Grown.empty())
    for (int I = 0; I < 80; ++I)
      Grown.push_back(new obs::ProfileSite(
          __FILE__, __LINE__, ("test.grow." + std::to_string(I)).c_str()));
  EXPECT_EQ(P.sitesDropped(), DroppedBefore) << "silent drops under the cap";
  for (obs::ProfileSite *S : Grown)
    EXPECT_GE(S->index(), 0) << S->name();
  EXPECT_GT(P.siteCount(), obs::Profiler::BlockSites);

  // A site past the first 64-cell block records and snapshots like any
  // other: the growable storage is transparent to attribution.
  obs::ProfileSite *High = nullptr;
  for (obs::ProfileSite *S : Grown)
    if (S->index() >= obs::Profiler::BlockSites) {
      High = S;
      break;
    }
  ASSERT_NE(High, nullptr);
  P.enable();
  obs::profileEvent(*High, 4096, 2);
  std::vector<obs::ProfileSiteSnap> Sites = P.snapshot();
  const obs::ProfileSiteSnap *Snap = findSite(Sites, High->name());
  ASSERT_NE(Snap, nullptr);
  EXPECT_EQ(Snap->Events, 1);
  EXPECT_EQ(Snap->Bytes, 4096);
}

//===----------------------------------------------------------------------===//
// Heap-tree introspection (obs::snapshotHeapTree)
//===----------------------------------------------------------------------===//

TEST_F(ProfileTest, HeapTreeSnapshotWithoutRuntimeIsEmptyFallback) {
  std::string S = obs::snapshotHeapTree();
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(S, V, Err)) << Err;
  const json::Value *Live = V.field("live_heaps");
  ASSERT_NE(Live, nullptr);
  EXPECT_EQ(Live->NumV, 0);
}

TEST_F(ProfileTest, MetricsSampleCarriesHeapTreeSummary) {
  auto &S = obs::MetricsSampler::get();
  S.clearSeries();
  obs::MetricsSample Outside = S.sampleOnce();
  EXPECT_EQ(Outside.LiveHeaps, 0) << "no runtime alive";
  EXPECT_EQ(Outside.MaxHeapDepth, -1);

  obs::MetricsSample Inside;
  {
    rt::Runtime R(workerCfg(2));
    R.run([&] { Inside = S.sampleOnce(); }); // Root heap live during run.
  }
  EXPECT_GE(Inside.LiveHeaps, 1);
  EXPECT_GE(Inside.MaxHeapDepth, 0);

  // The depth histogram partitions the live heaps: one bucket per depth,
  // summing back to the live count, and no buckets beyond the max depth.
  EXPECT_EQ(Outside.DepthHist.size(), 0u);
  ASSERT_EQ(static_cast<int64_t>(Inside.DepthHist.size()),
            Inside.MaxHeapDepth + 1);
  int64_t HistSum = 0;
  for (int64_t N : Inside.DepthHist) {
    EXPECT_GE(N, 0);
    HistSum += N;
  }
  EXPECT_EQ(HistSum, Inside.LiveHeaps);

  // The exported series carries the per-sample summary.
  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(S.jsonDump(), Doc, Err)) << Err;
  const json::Value *Samples = Doc.field("samples");
  ASSERT_NE(Samples, nullptr);
  ASSERT_EQ(Samples->Items.size(), 2u);
  const json::Value *H = Samples->Items[1].field("heaps");
  ASSERT_NE(H, nullptr);
  ASSERT_NE(H->field("live"), nullptr);
  EXPECT_GE(H->field("live")->NumV, 1);
  ASSERT_NE(H->field("max_depth"), nullptr);
  EXPECT_GE(H->field("max_depth")->NumV, 0);
  const json::Value *Hist = H->field("depth_hist");
  ASSERT_NE(Hist, nullptr);
  ASSERT_TRUE(Hist->isArray());
  int64_t JsonSum = 0;
  for (const json::Value &B : Hist->Items)
    JsonSum += static_cast<int64_t>(B.NumV);
  EXPECT_EQ(JsonSum, static_cast<int64_t>(H->field("live")->NumV));
  S.clearSeries();
}

TEST_F(ProfileTest, HeapTreeSnapshotConcurrentWithForkJoinUnderChaos) {
  using namespace mpl::ops;
  // A snapshot thread hammers obs::snapshotHeapTree() while two workers
  // fork, join and collect under a seeded chaos schedule — the TSan preset
  // runs this test too, so the gauge-only walk is exercised for races.
  chaos::enable(chaos::Config::fromSeed(11));
  std::atomic<bool> Done{false};
  std::atomic<int> Parsed{0};
  bool SnapshotsOk = true;
  std::string FirstError;
  {
    rt::Runtime R(workerCfg(2));
    std::thread Snap([&] {
      while (!Done.load(std::memory_order_acquire)) {
        std::string S = obs::snapshotHeapTree();
        json::Value V;
        std::string Err;
        if (!json::parse(S, V, Err)) {
          SnapshotsOk = false;
          FirstError = Err + ": " + S;
          break;
        }
        const json::Value *Schema = V.field("schema");
        const json::Value *Heaps = V.field("heaps");
        if (!Schema || Schema->StrV != "mpl-heap-tree/1" || !Heaps ||
            !Heaps->isArray()) {
          SnapshotsOk = false;
          FirstError = "missing schema/heaps: " + S;
          break;
        }
        for (const json::Value &H : Heaps->Items) {
          const json::Value *Cb = H.field("chunk_bytes");
          const json::Value *Pb = H.field("pinned_bytes");
          if (!Cb || Cb->NumV < 0 || !Pb || Pb->NumV < 0) {
            SnapshotsOk = false;
            FirstError = "negative gauge: " + S;
            break;
          }
        }
        Parsed.fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (int I = 0; I < 4 && SnapshotsOk; ++I)
      R.run([] {
        (void)wl::fib(16, 4);
        (void)wl::exchange(500);
      });
    Done.store(true, std::memory_order_release);
    Snap.join();
  }
  chaos::disable();
  EXPECT_TRUE(SnapshotsOk) << FirstError;
  EXPECT_GT(Parsed.load(), 0);
}

//===----------------------------------------------------------------------===//
// Prometheus exposition (obs/Exposition.h, DESIGN.md §16)
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, ExpositionRendersAndPassesChecker) {
  Stat S("test.expo.counter");
  S.add(5);
  Histogram H("test.expo.ns");
  H.record(0);    // bucket 0 → le="0"
  H.record(100);  // bucket 7 → le="127"
  H.record(2000); // bucket 11 → le="2047"
  std::string Text = obs::renderPrometheus();
  EXPECT_NE(Text.find("# TYPE mpl_test_expo_counter_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("mpl_test_expo_counter_total 5"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE mpl_test_expo_ns histogram"),
            std::string::npos);
  // The log2→le mapping: bucket B's inclusive upper bound is 2^B - 1, and
  // bucket counts are cumulative up to the highest non-empty bucket.
  EXPECT_NE(Text.find("mpl_test_expo_ns_bucket{le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("mpl_test_expo_ns_bucket{le=\"127\"} 2"),
            std::string::npos);
  EXPECT_NE(Text.find("mpl_test_expo_ns_bucket{le=\"2047\"} 3"),
            std::string::npos);
  EXPECT_NE(Text.find("mpl_test_expo_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(Text.find("mpl_test_expo_ns_count 3"), std::string::npos);
  std::string Err;
  int Series = 0;
  EXPECT_TRUE(obs::checkExposition(Text, Err, &Series)) << Err;
  EXPECT_GT(Series, 10); // em.* counters + gauges + our two families
}

TEST_F(ObsTest, ExpositionCheckerRejectsMalformed) {
  std::string Err;
  // Duplicate series (same name + label set twice).
  EXPECT_FALSE(obs::checkExposition(
      "# TYPE mpl_x counter\nmpl_x 1\nmpl_x 2\n", Err));
  EXPECT_NE(Err.find("duplicate series"), std::string::npos) << Err;
  // Duplicate TYPE declaration.
  EXPECT_FALSE(obs::checkExposition(
      "# TYPE mpl_x counter\n# TYPE mpl_x counter\nmpl_x 1\n", Err));
  // Negative counter.
  EXPECT_FALSE(
      obs::checkExposition("# TYPE mpl_x counter\nmpl_x -1\n", Err));
  EXPECT_NE(Err.find("negative counter"), std::string::npos) << Err;
  // Sample without a declared family.
  EXPECT_FALSE(obs::checkExposition("mpl_mystery 1\n", Err));
  // Non-numeric value.
  EXPECT_FALSE(
      obs::checkExposition("# TYPE mpl_x gauge\nmpl_x banana\n", Err));
  // Non-increasing le buckets.
  EXPECT_FALSE(obs::checkExposition("# TYPE mpl_h histogram\n"
                                    "mpl_h_bucket{le=\"3\"} 1\n"
                                    "mpl_h_bucket{le=\"1\"} 2\n"
                                    "mpl_h_bucket{le=\"+Inf\"} 2\n"
                                    "mpl_h_sum 4\nmpl_h_count 2\n",
                                    Err));
  EXPECT_NE(Err.find("non-increasing le"), std::string::npos) << Err;
  // Cumulative bucket counts must be non-decreasing.
  EXPECT_FALSE(obs::checkExposition("# TYPE mpl_h histogram\n"
                                    "mpl_h_bucket{le=\"1\"} 2\n"
                                    "mpl_h_bucket{le=\"3\"} 1\n"
                                    "mpl_h_bucket{le=\"+Inf\"} 2\n"
                                    "mpl_h_sum 4\nmpl_h_count 2\n",
                                    Err));
  // Missing +Inf bucket.
  EXPECT_FALSE(obs::checkExposition("# TYPE mpl_h histogram\n"
                                    "mpl_h_bucket{le=\"1\"} 1\n"
                                    "mpl_h_sum 1\nmpl_h_count 1\n",
                                    Err));
  // +Inf bucket must equal _count.
  EXPECT_FALSE(obs::checkExposition("# TYPE mpl_h histogram\n"
                                    "mpl_h_bucket{le=\"+Inf\"} 1\n"
                                    "mpl_h_sum 1\nmpl_h_count 2\n",
                                    Err));
  // The well-formed version of the same histogram passes.
  EXPECT_TRUE(obs::checkExposition("# TYPE mpl_h histogram\n"
                                   "mpl_h_bucket{le=\"1\"} 1\n"
                                   "mpl_h_bucket{le=\"+Inf\"} 2\n"
                                   "mpl_h_sum 42\nmpl_h_count 2\n",
                                   Err))
      << Err;
}

//===----------------------------------------------------------------------===//
// Rolling windows (support/Histogram.h)
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, RollingWindowAgesOutOldSamples) {
  Histogram H("test.rolling.window.ns");
  RollingWindow W(H, /*Slots=*/4, /*SlotNs=*/100);
  W.maybeRotate(1000); // stamps the construction-time baseline
  H.record(64);
  H.record(64);
  RollingWindow::WindowStats S = W.window(1050);
  EXPECT_EQ(S.Count, 2);
  EXPECT_EQ(S.WindowNs, 50);
  EXPECT_EQ(S.Pct.P50, 127); // bucket upper bound of bit_width(64) == 7

  // One rotation per slot with no new samples: once the ring fills, the
  // oldest retained snapshot already contains both records, so the
  // windowed view is empty while the lifetime histogram still holds 2.
  for (int I = 1; I <= 4; ++I)
    W.maybeRotate(1000 + 100 * I);
  S = W.window(1450);
  EXPECT_EQ(S.Count, 0);
  EXPECT_EQ(H.count(), 2);
  EXPECT_LE(S.WindowNs, 4 * 100 + 50); // converged to ~Slots * SlotNs

  // New samples show up immediately (diff against the same base).
  H.record(128);
  S = W.window(1460);
  EXPECT_EQ(S.Count, 1);
}

TEST_F(ObsTest, RollingWindowCatchUpCollapsesStall) {
  Histogram H("test.rolling.stall.ns");
  RollingWindow W(H, /*Slots=*/4, /*SlotNs=*/100);
  W.maybeRotate(1000);
  H.record(10);
  // A 10-slot stall in one call must not stretch the window: the catch-up
  // path collapses it into a single post-stall snapshot.
  W.maybeRotate(2000);
  W.maybeRotate(2100);
  W.maybeRotate(2200);
  W.maybeRotate(2300);
  RollingWindow::WindowStats S = W.window(2310);
  EXPECT_EQ(S.Count, 0);      // the stall-era sample aged out
  EXPECT_EQ(S.WindowNs, 310); // base is the collapsed post-stall snapshot
}

//===----------------------------------------------------------------------===//
// Signal-safe stats dump (MPL_STATS_DUMP)
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, StatsDumpWritesExpositionFile) {
  std::string Path = "obs_test_stats_dump.prom";
  obs::armStatsDump(Path);
  // No request pending: servicing is a no-op.
  EXPECT_FALSE(obs::serviceStatsDump());
  // The signal handler's body is exactly this relaxed store.
  obs::requestStatsDump();
  EXPECT_TRUE(obs::serviceStatsDump());
  EXPECT_FALSE(obs::serviceStatsDump()); // one dump per request
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  int Series = 0;
  EXPECT_TRUE(obs::checkExposition(Buf.str(), Err, &Series)) << Err;
  EXPECT_GT(Series, 0);
  std::remove(Path.c_str());
}
