//===- tests/samples_test.cpp - Shipped PML sample programs ---------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Runs every .pml sample shipped in examples/pml/ end to end (the path is
// injected by CMake), so the samples cannot rot. Expected outputs are
// pinned where the programs are deterministic.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "pml/Vm.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace mpl;

#ifndef MPL_SAMPLES_DIR
#error "MPL_SAMPLES_DIR must be defined by the build"
#endif

namespace {

struct SampleResult {
  bool Ok = false;
  std::string Output;
  std::string Error;
};

SampleResult runSample(const std::string &Name, int Workers) {
  SampleResult R;
  std::ifstream In(std::string(MPL_SAMPLES_DIR) + "/" + Name);
  if (!In) {
    R.Error = "cannot open sample " + Name;
    return R;
  }
  std::stringstream Ss;
  Ss << In.rdbuf();

  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Profile = false;
  rt::Runtime Rt(Cfg);
  Rt.run([&] {
    std::string Rendered, TypeStr;
    std::vector<std::string> Errors;
    R.Ok = pml::evalSource(Ss.str(), R.Output, Rendered, TypeStr, Errors);
    if (!Errors.empty())
      R.Error = Errors[0];
  });
  return R;
}

class SamplesTest : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(SamplesTest, Fib) {
  SampleResult R = runSample("fib.pml", GetParam());
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "317811\n");
}

TEST_P(SamplesTest, Counter) {
  SampleResult R = runSample("counter.pml", GetParam());
  EXPECT_TRUE(R.Ok) << R.Error;
  // The two branches race on the shared counter (see the sample's note):
  // any value in [1000, 2000] is a legal outcome; memory safety is the
  // property under test.
  int64_t V = std::strtoll(R.Output.c_str(), nullptr, 10);
  EXPECT_GE(V, 1000);
  EXPECT_LE(V, 2000);
}

TEST_P(SamplesTest, ArrayMergesort) {
  SampleResult R = runSample("mergesort.pml", GetParam());
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output.substr(0, 7), "sorted\n");
}

TEST_P(SamplesTest, Generator) {
  SampleResult R = runSample("generator.pml", GetParam());
  EXPECT_TRUE(R.Ok) << R.Error;
  // Both sums are deterministic at any worker count; the second handler
  // resumes every captured continuation inside a par branch.
  EXPECT_EQ(R.Output, "5050\n1225\n");
}

TEST_P(SamplesTest, ListMergesort) {
  SampleResult R = runSample("listsort.pml", GetParam());
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "sorted\n2000\n");
}

INSTANTIATE_TEST_SUITE_P(Workers, SamplesTest, ::testing::Values(1, 3),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return "P" + std::to_string(Info.param);
                         });
