//===- tests/sched_test.cpp - Unit tests for the scheduler ----------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/Deque.h"
#include "sched/Job.h"
#include "sched/Scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

using namespace mpl;

TEST(DequeTest, PushPopLifo) {
  Deque D;
  Job J1, J2, J3;
  D.push(&J1);
  D.push(&J2);
  D.push(&J3);
  EXPECT_EQ(D.pop(), &J3);
  EXPECT_EQ(D.pop(), &J2);
  EXPECT_EQ(D.pop(), &J1);
  EXPECT_EQ(D.pop(), nullptr);
}

TEST(DequeTest, StealFifo) {
  Deque D;
  Job J1, J2;
  D.push(&J1);
  D.push(&J2);
  EXPECT_EQ(D.steal(), &J1);
  EXPECT_EQ(D.steal(), &J2);
  EXPECT_EQ(D.steal(), nullptr);
}

TEST(DequeTest, ConcurrentStealersGetEachJobOnce) {
  Deque D;
  constexpr int N = 4096;
  std::vector<Job> Jobs(N);
  for (auto &J : Jobs)
    D.push(&J);

  std::atomic<int> Stolen{0};
  std::vector<std::thread> Thieves;
  for (int T = 0; T < 4; ++T)
    Thieves.emplace_back([&] {
      while (true) {
        Job *J = D.steal();
        if (!J) {
          if (D.looksEmpty())
            break;
          continue;
        }
        // Each job must be won exactly once.
        uint32_t Prev = J->Done.fetch_add(1);
        EXPECT_EQ(Prev, 0u);
        Stolen.fetch_add(1);
      }
    });
  for (auto &T : Thieves)
    T.join();
  EXPECT_EQ(Stolen.load(), N);
}

TEST(SchedulerTest, RunsRoot) {
  Scheduler S({.NumWorkers = 1, .Profile = false});
  int X = 0;
  S.run([&] { X = 42; });
  EXPECT_EQ(X, 42);
}

TEST(SchedulerTest, ForkJoinComputesBothBranches) {
  Scheduler S({.NumWorkers = 2, .Profile = false});
  int A = 0, B = 0;
  S.run([&] { S.fork2join([&] { A = 1; }, [&] { B = 2; }); });
  EXPECT_EQ(A, 1);
  EXPECT_EQ(B, 2);
}

static int64_t schedFib(Scheduler &S, int64_t N) {
  if (N < 2)
    return N;
  if (N < 12) // Grain: run small subtrees sequentially.
    return schedFib(S, N - 1) + schedFib(S, N - 2);
  int64_t A = 0, B = 0;
  S.fork2join([&] { A = schedFib(S, N - 1); },
              [&] { B = schedFib(S, N - 2); });
  return A + B;
}

TEST(SchedulerTest, NestedForkJoinFib) {
  for (int Workers : {1, 2, 4}) {
    Scheduler S({.NumWorkers = Workers, .Profile = false});
    int64_t R = 0;
    S.run([&] { R = schedFib(S, 22); });
    EXPECT_EQ(R, 17711) << "workers=" << Workers;
  }
}

TEST(SchedulerTest, ParallelForCoversRange) {
  Scheduler S({.NumWorkers = 3, .Profile = false});
  constexpr int64_t N = 10000;
  std::vector<std::atomic<int>> Hits(N);
  S.run([&] {
    S.parallelFor(0, N, 64, [&](int64_t I) { Hits[I].fetch_add(1); });
  });
  for (int64_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(SchedulerTest, ParallelForEmptyAndTinyRanges) {
  Scheduler S({.NumWorkers = 2, .Profile = false});
  int Count = 0;
  S.run([&] {
    S.parallelFor(5, 5, 1, [&](int64_t) { ++Count; });
    S.parallelFor(0, 1, 1, [&](int64_t) { ++Count; });
  });
  EXPECT_EQ(Count, 1);
}

TEST(ProfilerTest, WorkAtLeastSpan) {
  Scheduler S({.NumWorkers = 1, .Profile = true});
  WorkSpan WS = S.run([&] { volatile int64_t X = schedFib(S, 20); (void)X; });
  EXPECT_GT(WS.WorkSec, 0.0);
  EXPECT_GT(WS.SpanSec, 0.0);
  // Work >= span always (with slack for clock jitter).
  EXPECT_GE(WS.WorkSec * 1.05, WS.SpanSec);
}

TEST(ProfilerTest, ParallelWorkloadHasParallelism) {
  // fib has abundant parallelism: W/S should clearly exceed 1 even with
  // sequential execution underneath.
  Scheduler S({.NumWorkers = 1, .Profile = true});
  WorkSpan WS = S.run([&] { volatile int64_t X = schedFib(S, 26); (void)X; });
  EXPECT_GT(WS.WorkSec / WS.SpanSec, 1.5);
  // And the Brent bound must be monotone in P.
  EXPECT_GT(WS.predictedTime(1), WS.predictedTime(8));
  EXPECT_GE(WS.predictedTime(8), WS.SpanSec);
}

TEST(ProfilerTest, SequentialChainHasNoParallelism) {
  // A purely sequential computation: span == work (no forks).
  Scheduler S({.NumWorkers = 2, .Profile = true});
  WorkSpan WS = S.run([&] {
    volatile int64_t Acc = 0;
    for (int I = 0; I < 2000000; ++I)
      Acc += I;
  });
  EXPECT_NEAR(WS.WorkSec, WS.SpanSec, WS.WorkSec * 0.2);
}
