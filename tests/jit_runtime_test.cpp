//===- tests/jit_runtime_test.cpp - W^X code-page lifecycle tests ---------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// The JIT's memory-safety story (DESIGN.md §17) rests on three claims this
// suite checks directly against the kernel and the process gates:
//
//  1. W^X: no mapping in the process is ever readable-writable-executable,
//     before, during, or after code publication — verified by scanning
//     /proc/self/maps while published code is live.
//  2. Lifecycle: published code is executable and immutable until the pool
//     dies, and the pool's teardown unmaps everything (leak-clean under
//     ASan, which runs this binary in CI).
//  3. Sanitizer gating: under ThreadSanitizer the JIT force-disables
//     itself even when a test calls setEnabled(true) — generated code is
//     uninstrumented and would produce false races.
//
//===----------------------------------------------------------------------===//

#include "pml/jit/Jit.h"
#include "pml/jit/JitRuntime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <thread>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace mpl;

namespace {

/// True if any mapping in /proc/self/maps carries rwx permissions. On
/// systems without procfs (macOS) returns false — the W^X claim is then
/// covered by the lifecycle tests alone.
bool anyRwxMapping(std::string *Offender = nullptr) {
  std::ifstream Maps("/proc/self/maps");
  if (!Maps.is_open())
    return false;
  std::string Line;
  while (std::getline(Maps, Line)) {
    // Format: "addr-addr perms offset dev inode path"; perms is field 2.
    std::istringstream Is(Line);
    std::string Range, Perms;
    Is >> Range >> Perms;
    if (Perms.size() >= 3 && Perms[0] == 'r' && Perms[1] == 'w' &&
        Perms[2] == 'x') {
      if (Offender)
        *Offender = Line;
      return true;
    }
  }
  return false;
}

#if MPL_JIT_SUPPORTED

// A tiny hand-assembled function: mov rax, 0x2a; ret. If publish really
// produced executable pages, calling it returns 42.
const uint8_t Ret42[] = {0x48, 0xc7, 0xc0, 0x2a, 0x00, 0x00, 0x00, 0xc3};

TEST(JitRuntime, PublishProducesExecutableCode) {
  jit::CodePool Pool;
  const uint8_t *Code = Pool.publish(Ret42, sizeof(Ret42));
  ASSERT_NE(Code, nullptr);
  EXPECT_EQ(Pool.blockCount(), 1u);
  EXPECT_GE(Pool.mappedBytes(), sizeof(Ret42));

  auto Fn = reinterpret_cast<uint64_t (*)()>(
      reinterpret_cast<uintptr_t>(Code));
  EXPECT_EQ(Fn(), 42u);
  // The published bytes are also readable (RX, not X-only) — the entry
  // table and the dispatcher both read through this pointer.
  EXPECT_EQ(std::memcmp(Code, Ret42, sizeof(Ret42)), 0);
}

TEST(JitRuntime, NoRwxMappingWhileCodeIsLive) {
  std::string Offender;
  ASSERT_FALSE(anyRwxMapping(&Offender)) << "pre-existing rwx: " << Offender;

  jit::CodePool Pool;
  std::vector<const uint8_t *> Published;
  for (int I = 0; I < 16; ++I) {
    const uint8_t *Code = Pool.publish(Ret42, sizeof(Ret42));
    ASSERT_NE(Code, nullptr);
    Published.push_back(Code);
    // The W^X window: at no point between map and publish may an rwx
    // mapping exist. We can only observe after publish returns, but the
    // implementation flips RW->RX with never an rwx stage; a regression
    // that maps rwx "for convenience" leaves the mapping rwx permanently
    // and this scan catches it.
    ASSERT_FALSE(anyRwxMapping(&Offender)) << "rwx after publish " << I
                                           << ": " << Offender;
  }
  EXPECT_EQ(Pool.blockCount(), 16u);
  for (const uint8_t *Code : Published)
    EXPECT_EQ(reinterpret_cast<uint64_t (*)()>(
                  reinterpret_cast<uintptr_t>(Code))(),
              42u);
}

TEST(JitRuntime, TeardownUnmapsEverything) {
  // ASan (the CI sanitizer job runs this test) verifies no leak; here we
  // check the accounting goes back to zero and repeated pools don't
  // accumulate mappings.
  for (int Round = 0; Round < 4; ++Round) {
    jit::CodePool Pool;
    for (int I = 0; I < 8; ++I)
      ASSERT_NE(Pool.publish(Ret42, sizeof(Ret42)), nullptr);
    EXPECT_EQ(Pool.blockCount(), 8u);
  }
  // Pools destroyed; a fresh pool starts from zero.
  jit::CodePool Fresh;
  EXPECT_EQ(Fresh.blockCount(), 0u);
  EXPECT_EQ(Fresh.mappedBytes(), 0u);
}

TEST(JitRuntime, PublishIsThreadSafeUnderAccounting) {
  jit::CodePool Pool;
  constexpr int Threads = 4, PerThread = 32;
  std::vector<std::unique_ptr<std::thread>> Ts;
  std::atomic<int> Failures{0};
  for (int T = 0; T < Threads; ++T)
    Ts.push_back(std::make_unique<std::thread>([&] {
      for (int I = 0; I < PerThread; ++I) {
        const uint8_t *Code = Pool.publish(Ret42, sizeof(Ret42));
        if (!Code || reinterpret_cast<uint64_t (*)()>(
                         reinterpret_cast<uintptr_t>(Code))() != 42)
          Failures.fetch_add(1);
      }
    }));
  for (auto &T : Ts)
    T->join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Pool.blockCount(), static_cast<size_t>(Threads * PerThread));
  EXPECT_FALSE(anyRwxMapping());
}

#endif // MPL_JIT_SUPPORTED

//===----------------------------------------------------------------------===//
// Gating
//===----------------------------------------------------------------------===//

#if defined(__SANITIZE_THREAD__)
#define MPL_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MPL_TEST_TSAN 1
#else
#define MPL_TEST_TSAN 0
#endif
#else
#define MPL_TEST_TSAN 0
#endif

TEST(JitGating, TsanForcesJitOff) {
#if MPL_TEST_TSAN
  // Under tsan the gate must refuse to arm, no matter what callers ask.
  EXPECT_TRUE(jit::tsanForcedOff());
  jit::setEnabled(true);
  EXPECT_FALSE(jit::enabled());
  jit::setEnabled(false);
#else
  EXPECT_FALSE(jit::tsanForcedOff());
#if MPL_JIT_SUPPORTED
  // Outside tsan on a supported target, the programmatic gate works both
  // ways and always ends this test disarmed.
  jit::setEnabled(true);
  EXPECT_TRUE(jit::enabled());
  jit::setEnabled(false);
  EXPECT_FALSE(jit::enabled());
#else
  jit::setEnabled(true);
  EXPECT_FALSE(jit::enabled());
  jit::setEnabled(false);
#endif
#endif
}

TEST(JitGating, ThresholdClampsToOne) {
  uint64_t Saved = jit::compileThreshold();
  jit::setCompileThreshold(0);
  EXPECT_EQ(jit::compileThreshold(), 1u);
  jit::setCompileThreshold(100);
  EXPECT_EQ(jit::compileThreshold(), 100u);
  jit::setCompileThreshold(Saved);
}

} // namespace
