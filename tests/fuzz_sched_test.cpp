//===- tests/fuzz_sched_test.cpp - Seeded schedule fuzzing ----------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Drives the entangled workloads under chaos::ChaosSchedule: seeded victim
// forcing, injected preemptions at the barrier/join/GC decision points,
// delayed joins, steal storms, and forced collections — then cross-checks
// em::verifyInvariants and value integrity after every phase.
//
// Reproducing a failure: every corpus case prints its seed; rerun with
//   MPL_CHAOS_SEED=<seed> ./fuzz_sched_test
// to execute exactly that case (same perturbation mix, same worker count).
// MPL_FUZZ_SEEDS=<n> widens the corpus (CI runs 50 under TSan; the default
// is sized for a quick local ctest).
//
// The fault-injection cases arm a deliberate runtime bug (a skipped pin, a
// skipped join-time unpin) behind chaos::Fault and assert that the harness
// (a) catches it and (b) produces the identical failure signature when the
// seed is replayed — the property that makes a CI fuzz failure debuggable.
//
//===----------------------------------------------------------------------===//

#include "chaos/ChaosSchedule.h"
#include "core/Em.h"
#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"
#include "obs/Trace.h"
#include "pml/Vm.h"
#include "pml/jit/Jit.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "workloads/Entangled.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

using namespace mpl;
using namespace mpl::ops;

namespace {

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

/// Everything one chaos run produced, separated from GTest assertions so
/// two runs of the same seed can be compared for deterministic replay.
struct FuzzOutcome {
  bool ValuesOk = true;
  std::vector<std::string> ValueErrors;
  std::vector<std::string> Violations;
  em::CounterSnapshot Final;
  chaos::Totals Totals;
  int64_t JitCompiled = 0; ///< pml functions tiered up during the run.
  int64_t JitEntries = 0;  ///< dispatcher entries into native code.

  bool ok() const { return ValuesOk && Violations.empty(); }

  /// Stable digest of what failed (and of the entanglement activity that
  /// led there). Two runs of the same seed at one worker must match.
  std::string signature() const {
    std::ostringstream S;
    S << "valuesOk=" << ValuesOk;
    for (const std::string &E : ValueErrors)
      S << "; value: " << E;
    for (const std::string &V : Violations)
      S << "; invariant: " << V;
    S << "; reads=" << Final.EntangledReads
      << " readsUnpinned=" << Final.EntangledReadsUnpinned
      << " pins=" << Final.PinnedObjects << " unpins=" << Final.UnpinnedObjects
      << " conts=" << Final.ContCaptured << "/" << Final.ContResumed
      << " faults=" << Totals.FaultsInjected
      << " jit=" << JitCompiled << "/" << JitEntries;
    return S.str();
  }
};

/// The deepest branch of a Depth-level nest publishes one box per level
/// into a root-depth board (pins with unpin depth 0, released only by the
/// final top-level join).
void publishPyramid(Object *Board, int Level, int Depth) {
  if (Level == Depth)
    return;
  Local LB(Board);
  rt::par(
      [&] {
        Local Box(newRef(boxInt(100 + Level)));
        arrSet(LB.get(), static_cast<uint32_t>(Level), Box.slot());
        publishPyramid(LB.get(), Level + 1, Depth);
        return unit();
      },
      [&] { return unit(); });
}

/// Runs the mixed entangled workload under \p C with \p Workers workers,
/// verifying invariants and checksums after every phase.
/// With \p UseJit the pml tier compiles at threshold 1, so the effects
/// phase runs native code with the chaos JitPublish/JitEnter preemption
/// points armed — steals and forced GCs race compilation and entry.
FuzzOutcome runUnderChaos(const chaos::Config &C, int Workers,
                          bool UseJit = false) {
  FuzzOutcome Out;
  em::Counts.reset();
  StatRegistry::get().resetAll();
  jit::setCompileThreshold(1);
  jit::setEnabled(UseJit);
  // Arm the tracer with a small ring so a failing seed can flush the last
  // window of scheduler/barrier/GC events next to its printed seed. The
  // previous case's events are dropped so the flush shows only this run.
  obs::Tracer::get().clear();
  obs::TraceOptions TO;
  TO.Capacity = uint64_t(1) << 12;
  obs::Tracer::get().enable(TO);
  chaos::enable(C);

  auto valueCheck = [&](bool Cond, const char *What) {
    if (!Cond) {
      Out.ValuesOk = false;
      Out.ValueErrors.emplace_back(What);
    }
  };

  {
    rt::Config RC;
    RC.NumWorkers = Workers;
    RC.Profile = false;
    RC.GcMinBytes = 1 << 16; // Aggressive: maximize GC interleavings.
    rt::Runtime R(RC);

    auto phaseCheck = [&](const char *Phase) {
      // Between top-level phases the tree has fully joined: every unpin
      // depth has been reached, so no live pin may remain.
      em::InvariantReport Rep =
          em::verifyInvariants(/*ExpectFullyJoined=*/true);
      for (const std::string &V : Rep.Violations)
        Out.Violations.push_back(std::string(Phase) + ": " + V);
    };

    R.run([&] {
      // Phase 1: cross-pointer stress (publish + consume + write-back).
      valueCheck(wl::exchange(120) == 120, "exchange round-trip");
      phaseCheck("exchange");

      // Phase 2: down-pointer pins at every nesting level.
      {
        const int Depth = 5;
        Local Board(newArray(Depth, boxInt(0)));
        publishPyramid(Board.get(), 0, Depth);
        for (int L = 0; L < Depth; ++L) {
          Object *Box = Object::asPointer(
              arrGet(Board.get(), static_cast<uint32_t>(L)));
          valueCheck(Box && unboxInt(refGet(Box)) == 100 + L,
                     "pyramid level value");
          valueCheck(Box && !Box->isPinned(), "pyramid pin released");
        }
      }
      phaseCheck("pyramid");

      // Phase 3: producer/consumer through a Treiber stack.
      valueCheck(wl::channelPipeline(250) == 250 * 249 / 2,
                 "pipeline drained sum");
      phaseCheck("pipeline");

      // Phase 4: shared phase-concurrent hash table under churn.
      {
        Local Keys(wl::randomInts(2000, 500, 99));
        int64_t Got = wl::dedup(Keys.get(), 64);
        std::vector<bool> Seen(500, false);
        int64_t Expect = 0;
        for (int64_t I = 0; I < 2000; ++I) {
          auto V = static_cast<size_t>(
              hash64(99 ^ hash64(static_cast<uint64_t>(I))) % 500);
          if (!Seen[V]) {
            Seen[V] = true;
            ++Expect;
          }
        }
        valueCheck(Got == Expect, "dedup distinct count");
      }
      phaseCheck("dedup");

      // Phase 5: first-class effect handlers (DESIGN.md §13). Each par
      // branch captures a continuation at depth 1 and resumes it inside a
      // nested branch at depth 2 — the capture/resume pin protocol runs
      // with the ContCapture/ContResume preemption points armed, racing
      // steals, joins and forced collections. The aborting task drops its
      // continuation, so its capture pins must be released by the join
      // rule instead of the resume.
      {
        static const char *EffSrc =
            "effect Yield\n"
            "effect Abort\n"
            "fun task u =\n"
            "  handle 100 + perform Yield 0 with\n"
            "  | Yield x k =>\n"
            "      let val p = par (resume k 7, 1 + 1)\n"
            "      in fst p * snd p end\n"
            "  end\n"
            "fun drop u = handle 1 + perform Abort 0 with\n"
            "             | Abort x k => 42 end\n"
            "val pr = par (task (), task ())\n"
            "val dr = par (drop (), drop ())\n"
            "printInt (fst pr + snd pr + fst dr + snd dr)";
        std::string Out, Val, TyS;
        std::vector<std::string> Errs;
        bool Ok = pml::evalSource(EffSrc, Out, Val, TyS, Errs);
        valueCheck(Ok, "effects program evaluates");
        valueCheck(Out == "512\n", "effects checksum");
      }
      phaseCheck("effects");
    });

    // Final quiescence, after the root task finished.
    em::InvariantReport Rep =
        em::verifyInvariants(R.heaps(), /*ExpectFullyJoined=*/true);
    for (const std::string &V : Rep.Violations)
      Out.Violations.push_back(std::string("final: ") + V);
  }

  Out.Final = em::Counts.snapshot();
  Out.Totals = chaos::totals();
  Out.JitCompiled = StatRegistry::get().valueOf("pml.jit.compiled");
  Out.JitEntries = StatRegistry::get().valueOf("pml.jit.entries");
  chaos::disable();
  obs::Tracer::get().disable();
  jit::setEnabled(false);
  jit::setCompileThreshold(64);
  return Out;
}

//===----------------------------------------------------------------------===//
// Seed corpus
//===----------------------------------------------------------------------===//

std::vector<uint64_t> corpusSeeds() {
  // MPL_CHAOS_SEED=<seed> replays exactly one case (printed on failure).
  if (const char *S = std::getenv("MPL_CHAOS_SEED"))
    return {std::strtoull(S, nullptr, 0)};
  int N = 10; // Quick local default; CI raises this (see tools/ci.sh).
  if (const char *S = std::getenv("MPL_FUZZ_SEEDS"))
    if (int Parsed = std::atoi(S); Parsed > 0)
      N = Parsed;
  std::vector<uint64_t> Seeds;
  for (int I = 1; I <= N; ++I)
    Seeds.push_back(static_cast<uint64_t>(I));
  return Seeds;
}

/// CI's memory-pressure stage sets MPL_CHAOS_FAULT_EVERY_N=<n> (n >= 2) to
/// arm chaos::Fault::FailChunkAlloc across the whole corpus: every n-th
/// chunk acquisition fails and must be rescued by the governor's recovery
/// ladder with no invariant or value damage. n == 1 would make every retry
/// fail too (the ladder can never settle), so it is rejected.
uint32_t envFaultEveryN() {
  if (const char *S = std::getenv("MPL_CHAOS_FAULT_EVERY_N"))
    if (int N = std::atoi(S); N >= 2)
      return static_cast<uint32_t>(N);
  return 0;
}

class ScheduleFuzz : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ScheduleFuzz, CleanTreeHoldsAllInvariants) {
  const uint64_t Seed = GetParam();
  chaos::Config C = chaos::Config::fromSeed(Seed);
  if (uint32_t EveryN = envFaultEveryN()) {
    C.InjectFault = chaos::Fault::FailChunkAlloc;
    C.FaultEveryN = EveryN;
  }
  // Half the corpus runs the effects phase under the JIT tier (threshold
  // 1), so the chaos mix also races code publication and native entry.
  FuzzOutcome Out = runUnderChaos(C, C.suggestedWorkers(), Seed % 2 == 0);
  // On failure, flush the event window of this run so the seed replay has
  // a timeline to start from (loadable in Perfetto / chrome://tracing).
  std::string TraceNote;
  if (!Out.ok()) {
    std::string TracePath =
        "chaos_trace_seed_" + std::to_string(Seed) + ".json";
    if (obs::Tracer::get().writeChromeTrace(TracePath))
      TraceNote = "\n  trace of the failing run: " + TracePath;
  }
  EXPECT_TRUE(Out.ok()) << "schedule-fuzz failure; reproduce with:\n"
                        << "  MPL_CHAOS_SEED=" << Seed
                        << " ./fuzz_sched_test\n"
                        << Out.signature() << TraceNote;
  // The run must have exercised entanglement at all, or the corpus is
  // fuzzing nothing.
  EXPECT_GT(Out.Final.PinnedObjects, 0);
  EXPECT_GT(Out.Final.EntangledReads, 0);
  // ...and the continuation capture/resume protocol (phase 5), with its
  // chaos decision points armed. Four captures per run: two resumed on a
  // deeper strand, two dropped (released by the join rule).
  EXPECT_EQ(Out.Final.ContCaptured, 4);
  EXPECT_EQ(Out.Final.ContResumed, 2);
}

INSTANTIATE_TEST_SUITE_P(Corpus, ScheduleFuzz,
                         ::testing::ValuesIn(corpusSeeds()),
                         [](const ::testing::TestParamInfo<uint64_t> &I) {
                           return "Seed" + std::to_string(I.param);
                         });

//===----------------------------------------------------------------------===//
// Perturbations actually fire
//===----------------------------------------------------------------------===//

TEST(ChaosSchedule, PerturbationsAreExercised) {
  chaos::Config C;
  C.Seed = 2024;
  C.PreemptPermille = 1000; // Preempt at every decision point.
  C.ForceVictim = true;
  C.GcAtAllocPermille = 50;
  FuzzOutcome Out = runUnderChaos(C, 4);
  EXPECT_TRUE(Out.ok()) << Out.signature();
  EXPECT_GT(Out.Totals.Preemptions, 0);
  EXPECT_GT(Out.Totals.ForcedVictims, 0);
  EXPECT_GT(Out.Totals.ForcedGcs, 0);
}

TEST(ChaosSchedule, GcAtEveryAllocationStaysSound) {
  chaos::Config C;
  C.Seed = 7;
  C.GcAtAllocPermille = 1000; // Collect at every allocation poll.
  // One worker keeps the run small enough for per-alloc collection.
  FuzzOutcome Out = runUnderChaos(C, 1);
  EXPECT_TRUE(Out.ok()) << Out.signature();
  EXPECT_GT(Out.Totals.ForcedGcs, 0);
}

TEST(ChaosSchedule, SingleWorkerReplayIsDeterministic) {
  chaos::Config C = chaos::Config::fromSeed(5);
  FuzzOutcome A = runUnderChaos(C, 1);
  FuzzOutcome B = runUnderChaos(C, 1);
  EXPECT_TRUE(A.ok()) << A.signature();
  EXPECT_EQ(A.signature(), B.signature())
      << "one-worker chaos runs of the same seed must replay exactly";
  EXPECT_EQ(A.Final.EntangledReads, B.Final.EntangledReads);
  EXPECT_EQ(A.Final.PinnedBytes, B.Final.PinnedBytes);
}

//===----------------------------------------------------------------------===//
// JIT under chaos: tier-up races steals, preemptions and forced GCs
//===----------------------------------------------------------------------===//

TEST(JitChaos, ArmedJitSurvivesPreemptionStorm) {
  // Preempt at every decision point — including JitPublish (just before a
  // compiled function is published to other strands) and JitEnter (just
  // before the dispatcher jumps into native code). All invariants and
  // value checksums must hold exactly as in the interpreted runs.
  chaos::Config C;
  C.Seed = 90210;
  C.PreemptPermille = 1000;
  C.ForceVictim = true;
  C.GcAtAllocPermille = 50;
  FuzzOutcome Out = runUnderChaos(C, 4, /*UseJit=*/true);
  EXPECT_TRUE(Out.ok()) << Out.signature();
  EXPECT_GT(Out.Totals.Preemptions, 0);
  if (!jit::tsanForcedOff() && MPL_JIT_SUPPORTED) {
    EXPECT_GT(Out.JitCompiled, 0) << "effects phase never tiered up";
    EXPECT_GT(Out.JitEntries, 0);
  }
}

TEST(JitChaos, SameSeedTiersIdentically) {
  // Tier checks happen only at frame boundaries and compilation is claimed
  // by CAS, so a one-worker chaos schedule replays its tier decisions
  // exactly: same functions compiled, same number of native entries.
  chaos::Config C = chaos::Config::fromSeed(31);
  FuzzOutcome A = runUnderChaos(C, 1, /*UseJit=*/true);
  FuzzOutcome B = runUnderChaos(C, 1, /*UseJit=*/true);
  EXPECT_TRUE(A.ok()) << A.signature();
  EXPECT_EQ(A.signature(), B.signature())
      << "JIT-armed one-worker chaos runs of the same seed must replay";
  EXPECT_EQ(A.JitCompiled, B.JitCompiled);
  EXPECT_EQ(A.JitEntries, B.JitEntries);
  // The interpreted run of the same seed must agree on everything the
  // signature tracks except the jit counters themselves.
  FuzzOutcome I = runUnderChaos(C, 1, /*UseJit=*/false);
  EXPECT_TRUE(I.ok()) << I.signature();
  EXPECT_EQ(I.JitCompiled, 0);
  EXPECT_EQ(I.Final.ContCaptured, A.Final.ContCaptured);
  EXPECT_EQ(I.Final.ContResumed, A.Final.ContResumed);
}

//===----------------------------------------------------------------------===//
// Fault injection: the harness must catch a deliberately broken runtime,
// and the failure must replay exactly from its seed.
//===----------------------------------------------------------------------===//

TEST(ChaosFaultInjection, SkippedPinIsCaughtAndReplays) {
  chaos::Config C;
  C.Seed = 12345;
  C.InjectFault = chaos::Fault::SkipPin;
  C.FaultEveryN = 2; // Every other pin opportunity loses its pin.
  FuzzOutcome First = runUnderChaos(C, 1);
  EXPECT_FALSE(First.ok())
      << "a write barrier that loses pins must be caught";
  EXPECT_GT(First.Final.EntangledReadsUnpinned, 0)
      << "the entangled reader should observe the lost pin";
  EXPECT_GT(First.Totals.FaultsInjected, 0);

  FuzzOutcome Second = runUnderChaos(C, 1);
  EXPECT_EQ(First.signature(), Second.signature())
      << "the injected failure must reproduce exactly from its seed";
}

TEST(ChaosFaultInjection, SkippedUnpinIsCaughtAndReplays) {
  chaos::Config C;
  C.Seed = 777;
  C.InjectFault = chaos::Fault::SkipUnpin;
  C.FaultEveryN = 1; // Every join-time release is leaked.
  FuzzOutcome First = runUnderChaos(C, 1);
  EXPECT_FALSE(First.ok()) << "a join that leaks pins must be caught";
  bool SawLeak = false;
  for (const std::string &V : First.Violations)
    SawLeak |= V.find("still pinned") != std::string::npos;
  EXPECT_TRUE(SawLeak) << First.signature();

  FuzzOutcome Second = runUnderChaos(C, 1);
  EXPECT_EQ(First.signature(), Second.signature())
      << "the injected failure must reproduce exactly from its seed";
}

TEST(ChaosFaultInjection, FailedChunkAllocRecoversWithoutDamage) {
  // Unlike SkipPin/SkipUnpin this fault is *survivable by design*: the
  // governor's recovery ladder (trim -> emergency GC -> backoff retry)
  // must absorb every-other-attempt allocation failures with zero value
  // or invariant damage — and without raising OutOfMemoryError.
  chaos::Config C;
  C.Seed = 4242;
  C.InjectFault = chaos::Fault::FailChunkAlloc;
  C.FaultEveryN = 2;
  FuzzOutcome First = runUnderChaos(C, 1);
  EXPECT_TRUE(First.ok()) << First.signature();
  EXPECT_GT(First.Totals.FaultsInjected, 0)
      << "chunk-allocation faults must actually have fired";
  EXPECT_GT(StatRegistry::get().valueOf("mm.alloc.retries"), 0)
      << "each fired fault must go through the recovery ladder";
  EXPECT_EQ(StatRegistry::get().valueOf("mm.oom.raised"), 0);

  FuzzOutcome Second = runUnderChaos(C, 1);
  EXPECT_EQ(First.signature(), Second.signature())
      << "fault-injected recovery must replay exactly from its seed";
}

TEST(ChaosFaultInjection, SameSeedCleanTreeIsQuiet) {
  // The identical seeds with no fault armed: zero findings. This pins the
  // detectors to the faults (no background noise to drown a regression).
  for (uint64_t Seed : {uint64_t(12345), uint64_t(777)}) {
    chaos::Config C;
    C.Seed = Seed;
    FuzzOutcome Out = runUnderChaos(C, 1);
    EXPECT_TRUE(Out.ok()) << "seed " << Seed << ": " << Out.signature();
    EXPECT_EQ(Out.Final.EntangledReadsUnpinned, 0);
    EXPECT_EQ(Out.Totals.FaultsInjected, 0);
  }
}
