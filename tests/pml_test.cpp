//===- tests/pml_test.cpp - PML compiler and VM tests ---------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "pml/Compiler.h"
#include "pml/Lexer.h"
#include "pml/Parser.h"
#include "pml/Types.h"
#include "pml/Vm.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace mpl;
using namespace mpl::pml;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(PmlLexer, TokenizesProgram) {
  std::vector<std::string> Errs;
  auto Toks = lex("let val x = 41 in x + 1 end", Errs);
  EXPECT_TRUE(Errs.empty());
  ASSERT_GE(Toks.size(), 10u);
  EXPECT_EQ(Toks[0].Kind, Tok::KwLet);
  EXPECT_EQ(Toks[1].Kind, Tok::KwVal);
  EXPECT_EQ(Toks[2].Kind, Tok::Ident);
  EXPECT_EQ(Toks[2].Text, "x");
  EXPECT_EQ(Toks[4].Kind, Tok::Int);
  EXPECT_EQ(Toks[4].IntVal, 41);
  EXPECT_EQ(Toks.back().Kind, Tok::Eof);
}

TEST(PmlLexer, OperatorsAndPositions) {
  std::vector<std::string> Errs;
  auto Toks = lex("a := !b <> c <= d => e", Errs);
  EXPECT_TRUE(Errs.empty());
  EXPECT_EQ(Toks[1].Kind, Tok::Assign);
  EXPECT_EQ(Toks[2].Kind, Tok::Bang);
  EXPECT_EQ(Toks[4].Kind, Tok::Ne);
  EXPECT_EQ(Toks[6].Kind, Tok::Le);
  EXPECT_EQ(Toks[8].Kind, Tok::Arrow);
  EXPECT_EQ(Toks[0].Line, 1);
}

TEST(PmlLexer, CommentsNestAndLineComments) {
  std::vector<std::string> Errs;
  auto Toks = lex("1 (* outer (* inner *) still *) -- trailing\n2", Errs);
  EXPECT_TRUE(Errs.empty());
  ASSERT_EQ(Toks.size(), 3u); // 1, 2, eof
  EXPECT_EQ(Toks[0].IntVal, 1);
  EXPECT_EQ(Toks[1].IntVal, 2);
  EXPECT_EQ(Toks[1].Line, 2);
}

TEST(PmlLexer, StringEscapes) {
  std::vector<std::string> Errs;
  auto Toks = lex("\"a\\nb\\\"c\"", Errs);
  EXPECT_TRUE(Errs.empty());
  EXPECT_EQ(Toks[0].Kind, Tok::String);
  EXPECT_EQ(Toks[0].Text, "a\nb\"c");
}

TEST(PmlLexer, ReportsErrors) {
  std::vector<std::string> Errs;
  lex("1 @ 2", Errs);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("unexpected character"), std::string::npos);

  Errs.clear();
  lex("(* never closed", Errs);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("unterminated comment"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

static ExprPtr parseOk(const std::string &Src) {
  std::vector<std::string> Errs;
  ExprPtr E = parseProgram(Src, Errs);
  EXPECT_TRUE(Errs.empty()) << (Errs.empty() ? "" : Errs[0]);
  return E;
}

TEST(PmlParser, Precedence) {
  ExprPtr E = parseOk("1 + 2 * 3");
  ASSERT_TRUE(E);
  ASSERT_EQ(E->Kind, ExprKind::Binop);
  EXPECT_EQ(E->Op, Tok::Plus);
  EXPECT_EQ(E->B->Kind, ExprKind::Binop);
  EXPECT_EQ(E->B->Op, Tok::Star);
}

TEST(PmlParser, ApplicationBindsTighterThanOps) {
  ExprPtr E = parseOk("f 1 + g 2");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, ExprKind::Binop);
  EXPECT_EQ(E->A->Kind, ExprKind::App);
  EXPECT_EQ(E->B->Kind, ExprKind::App);
}

TEST(PmlParser, LetDesugarsMultipleDecls) {
  ExprPtr E = parseOk("let val x = 1 val y = 2 in x + y end");
  ASSERT_TRUE(E);
  ASSERT_EQ(E->Kind, ExprKind::LetVal);
  EXPECT_EQ(E->Str, "x");
  ASSERT_EQ(E->B->Kind, ExprKind::LetVal);
  EXPECT_EQ(E->B->Str, "y");
}

TEST(PmlParser, TopLevelDecls) {
  ExprPtr E = parseOk("fun id x = x\nval y = id 3\ny");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, ExprKind::LetFun);
  EXPECT_EQ(E->Str, "id");
}

TEST(PmlParser, ParForm) {
  ExprPtr E = parseOk("par (1 + 1, 2 + 2)");
  ASSERT_TRUE(E);
  EXPECT_EQ(E->Kind, ExprKind::Par);
}

TEST(PmlParser, ErrorsAreReported) {
  std::vector<std::string> Errs;
  EXPECT_EQ(parseProgram("let val = 3 in x end", Errs), nullptr);
  EXPECT_FALSE(Errs.empty());

  Errs.clear();
  EXPECT_EQ(parseProgram("if 1 then 2", Errs), nullptr);
  EXPECT_FALSE(Errs.empty());

  Errs.clear();
  EXPECT_EQ(parseProgram("1 + ", Errs), nullptr);
  EXPECT_FALSE(Errs.empty());
}

//===----------------------------------------------------------------------===//
// Type checker
//===----------------------------------------------------------------------===//

static std::string typeOf(const std::string &Src,
                          std::vector<std::string> *ErrOut = nullptr) {
  std::vector<std::string> Errs;
  ExprPtr E = parseProgram(Src, Errs);
  if (!E) {
    if (ErrOut)
      *ErrOut = Errs;
    return "<parse error>";
  }
  TypeChecker TC;
  Ty *T = TC.infer(*E, Errs);
  if (ErrOut)
    *ErrOut = Errs;
  return T ? TypeChecker::show(T) : "<type error>";
}

TEST(PmlTypes, Basics) {
  EXPECT_EQ(typeOf("1 + 2"), "int");
  EXPECT_EQ(typeOf("1 < 2"), "bool");
  EXPECT_EQ(typeOf("()"), "unit");
  EXPECT_EQ(typeOf("\"hi\""), "string");
  EXPECT_EQ(typeOf("(1, true)"), "(int * bool)");
  EXPECT_EQ(typeOf("ref 3"), "int ref");
  EXPECT_EQ(typeOf("!(ref 3)"), "int");
  EXPECT_EQ(typeOf("(ref 3) := 4"), "unit");
  EXPECT_EQ(typeOf("alloc 3 true"), "bool array");
  EXPECT_EQ(typeOf("fn x => x + 1"), "(int -> int)");
  EXPECT_EQ(typeOf("par (1, true)"), "(int * bool)");
}

TEST(PmlTypes, LetPolymorphism) {
  EXPECT_EQ(typeOf("let val id = fn x => x in (id 1, id true) end"),
            "(int * bool)");
  EXPECT_EQ(typeOf("fun id x = x\n(id 1, id true)"), "(int * bool)");
}

TEST(PmlTypes, ValueRestrictionBlocksPolymorphicRefs) {
  // `ref (fn x => x)` is not a syntactic value binding, so r must be
  // monomorphic; using it at two types must fail.
  std::vector<std::string> Errs;
  std::string T = typeOf(
      "let val r = ref (fn x => x) in (!r 1, !r true) end", &Errs);
  EXPECT_EQ(T, "<type error>");
  EXPECT_FALSE(Errs.empty());
}

TEST(PmlTypes, RecursionInfersArrow) {
  EXPECT_EQ(
      typeOf("fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n"
             "fib 10"),
      "int");
}

TEST(PmlTypes, Mismatches) {
  EXPECT_EQ(typeOf("1 + true"), "<type error>");
  EXPECT_EQ(typeOf("if 1 then 2 else 3"), "<type error>");
  EXPECT_EQ(typeOf("if true then 1 else false"), "<type error>");
  EXPECT_EQ(typeOf("(ref 1) := true"), "<type error>");
  EXPECT_EQ(typeOf("1 2"), "<type error>");
  EXPECT_EQ(typeOf("unknownVar"), "<type error>");
  EXPECT_EQ(typeOf("fn x => x x"), "<type error>"); // occurs check
  EXPECT_EQ(typeOf("1; 2"), "<type error>");        // seq needs unit
  EXPECT_EQ(typeOf("printInt 1; 2"), "int");
}

//===----------------------------------------------------------------------===//
// End-to-end evaluation
//===----------------------------------------------------------------------===//

namespace {
struct EvalResult {
  bool Ok;
  std::string Value;
  std::string Type;
  std::string Output;
  std::string Error;
};

EvalResult evalP(const std::string &Src, int Workers = 1) {
  EvalResult R{false, "", "", "", ""};
  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Profile = false;
  Cfg.GcMinBytes = 1 << 18;
  rt::Runtime Rt(Cfg);
  Rt.run([&] {
    std::vector<std::string> Errs;
    R.Ok = evalSource(Src, R.Output, R.Value, R.Type, Errs);
    if (!Errs.empty())
      R.Error = Errs[0];
  });
  return R;
}
} // namespace

TEST(PmlEval, Arithmetic) {
  EXPECT_EQ(evalP("1 + 2 * 3 - 4").Value, "3");
  EXPECT_EQ(evalP("-(5) + 2").Value, "-3");
  EXPECT_EQ(evalP("17 % 5").Value, "2");
  EXPECT_EQ(evalP("17 / 5").Value, "3");
}

TEST(PmlEval, BoolsAndComparisons) {
  EXPECT_EQ(evalP("1 < 2 andalso 3 <> 4").Value, "true");
  EXPECT_EQ(evalP("1 > 2 orelse false").Value, "false");
  EXPECT_EQ(evalP("not (1 = 1)").Value, "false");
  EXPECT_EQ(evalP("\"ab\" = \"ab\"").Value, "true");
  EXPECT_EQ(evalP("\"ab\" = \"ac\"").Value, "false");
  EXPECT_EQ(evalP("(1, true) = (1, true)").Value, "true");
}

TEST(PmlEval, ShortCircuitDoesNotEvaluateRhs) {
  EvalResult R = evalP("false andalso (1 / 0 = 0)");
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Value, "false");
  R = evalP("true orelse (1 / 0 = 0)");
  EXPECT_EQ(R.Value, "true");
}

TEST(PmlEval, LetFunctionsClosures) {
  EXPECT_EQ(evalP("let val x = 10 val f = fn y => x + y in f 5 end").Value,
            "15");
  EXPECT_EQ(evalP("fun add x y = x + y\nval inc = add 1\ninc 41").Value,
            "42");
  // Nested capture through two lambda levels.
  EXPECT_EQ(
      evalP("let val a = 1 in (fn x => fn y => a + x + y) 2 3 end").Value,
      "6");
}

TEST(PmlEval, RecursionAndConditionals) {
  EXPECT_EQ(
      evalP("fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n"
            "fib 15")
          .Value,
      "610");
  EXPECT_EQ(evalP("fun fact n = if n = 0 then 1 else n * fact (n-1)\n"
                  "fact 10")
                .Value,
            "3628800");
}

TEST(PmlEval, RefsAndSequencing) {
  EXPECT_EQ(evalP("let val r = ref 1 in r := !r + 41; !r end").Value, "42");
  EXPECT_EQ(evalP("let val r = ref 0 "
                  "fun loop i = if i = 10 then () else (r := !r + i; "
                  "loop (i+1)) in loop 0; !r end")
                .Value,
            "45");
}

TEST(PmlEval, Arrays) {
  EXPECT_EQ(evalP("length (alloc 7 0)").Value, "7");
  EXPECT_EQ(evalP("let val a = alloc 3 0 in set a 1 42; get a 1 end").Value,
            "42");
  EXPECT_EQ(evalP("let val a = alloc 2 (fn x => x + 1) in get a 0 7 end")
                .Value,
            "8"); // Builtin result applied further.
}

TEST(PmlEval, PrintOutput) {
  EvalResult R = evalP("print \"hello \"; print \"world\\n\"; printInt 42");
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Output, "hello world\n42\n");
}

TEST(PmlEval, PairsAndProjections) {
  EXPECT_EQ(evalP("fst (1, 2) + snd (3, 4)").Value, "5");
  EXPECT_EQ(evalP("(1, (true, \"x\"))").Value, "(1, (true, \"x\"))");
}

TEST(PmlEval, RuntimeErrors) {
  EvalResult R = evalP("1 / 0");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);

  R = evalP("get (alloc 2 0) 5");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);

  R = evalP("fun loop x = loop x + 1\nloop 0");
  EXPECT_FALSE(R.Ok);
  // Either resource guard may fire first (value stack vs call depth).
  EXPECT_TRUE(R.Error.find("depth") != std::string::npos ||
              R.Error.find("overflow") != std::string::npos)
      << R.Error;
}

TEST(PmlEval, PartialBuiltinApplicationRejected) {
  EvalResult R = evalP("let val s = set (alloc 1 0) in s 0 1 end");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("partial application"), std::string::npos);
}

TEST(PmlEval, GcDuringEvaluation) {
  // Allocate heavily with a tiny GC budget; values must survive.
  EvalResult R = evalP(
      "fun build n = if n = 0 then (0, 0) else (n, fst (build (n - 1)))\n"
      "fun sum n = if n = 0 then 0 else n + sum (n - 1)\n"
      "sum 1000 + fst (build 500)");
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, "501000");
}

//===----------------------------------------------------------------------===//
// Parallelism and effects (the paper's feature set, at the PML level)
//===----------------------------------------------------------------------===//

class PmlParTest : public ::testing::TestWithParam<int> {};

TEST_P(PmlParTest, ParallelFib) {
  EvalResult R = evalP(
      "fun fib n = if n < 2 then n else\n"
      "  if n < 10 then fib (n-1) + fib (n-2)\n"
      "  else let val p = par (fib (n-1), fib (n-2)) in fst p + snd p end\n"
      "fib 18",
      GetParam());
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, "2584");
}

TEST_P(PmlParTest, ParWithEffectsIsEntangled) {
  StatRegistry::get().resetAll();
  // Branch A publishes a ref into shared state; branch B reads through it:
  // a PML program that pre-paper MPL would reject.
  EvalResult R = evalP(
      "let val shared = ref (ref 0)\n"
      "    val p = par (\n"
      "      (shared := ref 42; 1),\n"
      "      (let fun poll u = let val inner = !shared in\n"
      "         if !inner = 42 then 42 else poll u end\n"
      "       in poll () end))\n"
      "in fst p + snd p end",
      GetParam());
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, "43");
}

TEST_P(PmlParTest, ParallelArrayFill) {
  EvalResult R = evalP(
      "let val a = alloc 100 0\n"
      "    fun fill lo hi = if hi - lo < 1 then ()\n"
      "      else if hi - lo = 1 then set a lo lo\n"
      "      else let val mid = (lo + hi) / 2\n"
      "           val p = par (fill lo mid, fill mid hi) in () end\n"
      "    fun sum i = if i = 100 then 0 else get a i + sum (i + 1)\n"
      "in fill 0 100; sum 0 end",
      GetParam());
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, "4950");
}

TEST_P(PmlParTest, TrapInBranchPropagates) {
  EvalResult R = evalP("par (1 / 0, 2)", GetParam());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Workers, PmlParTest, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return "P" + std::to_string(Info.param);
                         });

TEST(PmlCompiler, DisassemblerCoversPrograms) {
  std::vector<std::string> Errs;
  ExprPtr E = parseProgram("fun f x = x + 1\nf 2", Errs);
  ASSERT_TRUE(E);
  Program Prog;
  ASSERT_TRUE(compile(*E, Prog, Errs));
  std::string Dis = disassemble(Prog);
  EXPECT_NE(Dis.find("main"), std::string::npos);
  EXPECT_NE(Dis.find("Call"), std::string::npos);
  EXPECT_NE(Dis.find("Add"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Proper tail calls
//===----------------------------------------------------------------------===//

TEST(PmlTailCalls, SelfTailLoopRunsInConstantStack) {
  // 1M iterations: impossible without TCO (stack cap is 2^14 slots).
  EvalResult R = evalP(
      "fun loop i acc = if i = 0 then acc else loop (i - 1) (acc + i)\n"
      "loop 1000000 0");
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, "500000500000");
}

TEST(PmlTailCalls, TailCallsAcrossDifferentFunctions) {
  // Generic TCO: the tail call dispatches through a closure stored in a
  // ref, alternating between two distinct functions for 400k steps.
  EvalResult R = evalP(
      "val next = ref (fn x => x)\n"
      "fun stepA n = if n = 0 then 0 else !next (n - 1)\n"
      "fun stepB n = if n = 0 then 1 else stepA (n - 1)\n"
      "next := stepB;\n"
      "printInt (stepA 400000)");
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "0\n"); // 400000 is even: ends in stepA.
}

TEST(PmlTailCalls, TailPositionThroughLetIfSeq) {
  // Tail position must propagate through let bodies, both if branches,
  // and sequence tails.
  EvalResult R = evalP(
      "fun go i = if i = 0 then 42 else\n"
      "  let val j = i - 1 in (if j % 2 = 0 then go j else go j) end\n"
      "go 500000");
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, "42");
}

TEST(PmlTailCalls, NonTailRecursionStillBounded) {
  // Non-tail recursion must still hit the guard rather than crash.
  EvalResult R = evalP("fun sum n = if n = 0 then 0 else n + sum (n - 1)\n"
                       "sum 1000000");
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Error.find("depth") != std::string::npos ||
              R.Error.find("overflow") != std::string::npos);
}

TEST(PmlTailCalls, TailLoopWithEffects) {
  EvalResult R = evalP(
      "val a = alloc 100000 0\n"
      "fun fill i = if i = length a then () else (set a i (i * 2); "
      "fill (i + 1))\n"
      "fun sum i acc = if i = length a then acc "
      "else sum (i + 1) (acc + get a i)\n"
      "fill 0;\n"
      "printInt (sum 0 0)");
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "9999900000\n");
}

//===----------------------------------------------------------------------===//
// Lists and pattern matching
//===----------------------------------------------------------------------===//

TEST(PmlLists, Types) {
  // Type-variable names reflect global allocation order; check shape only.
  EXPECT_NE(typeOf("[]").find(" list"), std::string::npos);
  EXPECT_EQ(typeOf("[1, 2, 3]"), "int list");
  EXPECT_EQ(typeOf("1 :: [2]"), "int list");
  EXPECT_EQ(typeOf("[[true]]"), "bool list list");
  EXPECT_EQ(typeOf("[1, true]"), "<type error>");
  EXPECT_EQ(typeOf("1 :: 2"), "<type error>");
  EXPECT_EQ(typeOf("case [1] of [] => 0 | h :: _ => h"), "int");
  EXPECT_EQ(typeOf("case [1] of [] => 0 | h :: _ => h > 0"),
            "<type error>"); // Arms must agree.
  EXPECT_EQ(typeOf("case 1 of [] => 0 | _ => 1"), "<type error>");
}

TEST(PmlLists, NilIsPolymorphicValue) {
  // [] generalizes (it is a syntactic value).
  EXPECT_EQ(typeOf("let val e = [] in (1 :: e, true :: e) end"),
            "(int list * bool list)");
}

TEST(PmlLists, ConsAndLiteralsEvaluate) {
  EXPECT_EQ(evalP("[1, 2, 3]").Value, "[1, 2, 3]");
  EXPECT_EQ(evalP("1 :: 2 :: []").Value, "[1, 2]");
  EXPECT_EQ(evalP("[]").Value, "[]");
  EXPECT_EQ(evalP("[(1, true)]").Value, "[(1, true)]");
  EXPECT_EQ(evalP("[1] = [1]").Value, "true");
  EXPECT_EQ(evalP("[1] = [1, 2]").Value, "false");
  EXPECT_EQ(evalP("[] = [1]").Value, "false");
}

TEST(PmlLists, CaseMatchingBasics) {
  EXPECT_EQ(evalP("case [] of [] => 1 | _ :: _ => 2").Value, "1");
  EXPECT_EQ(evalP("case [9] of [] => 1 | h :: _ => h").Value, "9");
  EXPECT_EQ(evalP("case (1, 2) of (a, b) => a + b").Value, "3");
  EXPECT_EQ(evalP("case 5 of 1 => 10 | 5 => 50 | _ => 0").Value, "50");
  EXPECT_EQ(evalP("case true of false => 1 | true => 2").Value, "2");
  // Nested patterns.
  EXPECT_EQ(
      evalP("case [(1, 2), (3, 4)] of (a, _) :: (_, d) :: _ => a + d "
            "| _ => 0")
          .Value,
      "5");
}

TEST(PmlLists, CaseArmsTriedInOrder) {
  EXPECT_EQ(evalP("case 1 of _ => 7 | 1 => 8").Value, "7");
}

TEST(PmlLists, MatchFailureTraps) {
  EvalResult R = evalP("case [1] of [] => 0");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("match failure"), std::string::npos);
}

TEST(PmlLists, RecursiveListFunctions) {
  EXPECT_EQ(evalP("fun len xs = case xs of [] => 0 | _ :: t => 1 + len t\n"
                  "len [1, 2, 3, 4]")
                .Value,
            "4");
  EXPECT_EQ(
      evalP("fun rev xs acc = case xs of [] => acc | h :: t => rev t "
            "(h :: acc)\n"
            "rev [1, 2, 3] []")
          .Value,
      "[3, 2, 1]");
  EXPECT_EQ(
      evalP("fun map f xs = case xs of [] => [] | h :: t => f h :: map f t\n"
            "map (fn x => x * x) [1, 2, 3]")
          .Value,
      "[1, 4, 9]");
  // Tail-recursive fold over a long list (needs TCO).
  EXPECT_EQ(
      evalP("fun upto n acc = if n = 0 then acc else upto (n-1) (n :: acc)\n"
            "fun sum xs acc = case xs of [] => acc | h :: t => "
            "sum t (acc + h)\n"
            "sum (upto 100000 []) 0")
          .Value,
      "5000050000");
}

TEST(PmlLists, ParallelListProcessing) {
  // Split a list, process both halves in parallel, join — lists cross the
  // par boundary as results (merged into the parent heap at the join).
  EvalResult R = evalP(
      "fun upto n acc = if n = 0 then acc else upto (n-1) (n :: acc)\n"
      "fun sum xs acc = case xs of [] => acc | h :: t => sum t (acc + h)\n"
      "val p = par (sum (upto 2000 []) 0, sum (upto 1000 []) 0)\n"
      "fst p - snd p",
      2);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, std::to_string(2001000 - 500500));
}

TEST(PmlLists, GcDuringListChurn) {
  EvalResult R = evalP(
      "fun upto n acc = if n = 0 then acc else upto (n-1) (n :: acc)\n"
      "fun len xs = case xs of [] => 0 | _ :: t => 1 + len t\n"
      "fun churn i acc =\n"
      "  if i = 0 then acc\n"
      "  else churn (i - 1) (acc + len (upto 200 []))\n"
      "churn 300 0");
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, "60000");
}
