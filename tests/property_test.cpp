//===- tests/property_test.cpp - Model-checked GC property tests ----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Randomized property testing of the heap/GC/entanglement core against a
// shadow model. A random sequence of operations — allocations with random
// (discipline-respecting, pin-accompanied) edges, root creation/removal,
// heap forks, joins, and chain collections — runs simultaneously on the
// real runtime substrate and on a plain-C++ model graph. After every
// mutation batch, the reachable object graph must be isomorphic to the
// model: same tags, same shape, same sharing. Pinned objects must never
// move across a collection.
//
// A second harness generates random *effect-handler programs* (random
// handler nesting, perform depth, par placement) whose value is known by
// construction, runs them on the full pml stack, and checks the capture
// pin protocol: zero leaked pins at quiescence, capture/resume counters
// balancing the generated perform count, and the em.cont.capture profile
// site accounting for every pinned byte.
//
//===----------------------------------------------------------------------===//

#include "core/Em.h"
#include "core/Runtime.h"
#include "gc/Collector.h"
#include "gc/ShadowStack.h"
#include "hh/Heap.h"
#include "obs/Profile.h"
#include "pml/Vm.h"
#include "pml/jit/Jit.h"
#include "support/Random.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace mpl;

namespace {

struct ModelNode {
  int64_t Tag;
  std::vector<ModelNode *> Children;
};

class PropertyHarness {
public:
  explicit PropertyHarness(uint64_t Seed) : R(Seed) {
    HeapOf.push_back(HM.createRoot());
    ParentOf.push_back(-1);
    Alive.push_back(true);
    LiveKids.push_back(0);
    RootBase = nullptr;
    Stack.pushRange(&RootBase, &NumRoots);
  }

  ~PropertyHarness() { Stack.popRange(&RootBase); }

  void step() {
    uint64_t Dice = R.nextBounded(100);
    if (Dice < 45)
      allocateObject();
    else if (Dice < 60)
      addRoot();
    else if (Dice < 70)
      dropRoot();
    else if (Dice < 80)
      forkHeap();
    else if (Dice < 90)
      joinHeap();
    else
      collect();
  }

  /// Full isomorphism check of every root against the model.
  void validate() {
    std::map<const Object *, const ModelNode *> Seen;
    for (size_t I = 0; I < NumRoots; ++I)
      checkIso(Object::asPointer(RootSlots[I]), ModelRoots[I], Seen);
  }

  int64_t collections() const { return NumCollections; }
  int64_t allocations() const { return NextTag; }

private:
  //===-- Heap-tree management -------------------------------------------===

  int randomAliveHeap() {
    std::vector<int> Candidates;
    for (size_t I = 0; I < Alive.size(); ++I)
      if (Alive[I])
        Candidates.push_back(static_cast<int>(I));
    return Candidates[R.nextBounded(Candidates.size())];
  }

  int randomLeafHeap() {
    std::vector<int> Candidates;
    for (size_t I = 0; I < Alive.size(); ++I)
      if (Alive[I] && LiveKids[I] == 0)
        Candidates.push_back(static_cast<int>(I));
    return Candidates[R.nextBounded(Candidates.size())];
  }

  void forkHeap() {
    if (Alive.size() > 24)
      return;
    int P = randomAliveHeap();
    Heap *H = HM.forkChild(HeapOf[static_cast<size_t>(P)]);
    HeapOf.push_back(H);
    ParentOf.push_back(P);
    Alive.push_back(true);
    LiveKids.push_back(0);
    LiveKids[static_cast<size_t>(P)]++;
    HeapOf[static_cast<size_t>(P)]->setActiveForks(
        LiveKids[static_cast<size_t>(P)]);
  }

  void joinHeap() {
    int C = randomLeafHeap();
    if (C == 0)
      return; // Root never joins.
    int P = ParentOf[static_cast<size_t>(C)];
    HM.join(HeapOf[static_cast<size_t>(P)], HeapOf[static_cast<size_t>(C)]);
    Alive[static_cast<size_t>(C)] = false;
    LiveKids[static_cast<size_t>(P)]--;
    HeapOf[static_cast<size_t>(P)]->setActiveForks(
        LiveKids[static_cast<size_t>(P)]);
  }

  void collect() {
    int L = randomLeafHeap();
    GC.collectChain(HeapOf[static_cast<size_t>(L)], Stack);
    ++NumCollections;
  }

  //===-- Object management ----------------------------------------------===

  /// Picks a random live object by walking a short random path from a
  /// random root. Null when no roots exist.
  std::pair<Object *, ModelNode *> randomLiveObject() {
    if (NumRoots == 0)
      return {nullptr, nullptr};
    size_t I = R.nextBounded(NumRoots);
    Object *O = Object::asPointer(RootSlots[I]);
    ModelNode *M = ModelRoots[I];
    for (int Hop = 0; Hop < 3 && O; ++Hop) {
      if (M->Children.empty() || R.nextBounded(2) == 0)
        break;
      size_t K = R.nextBounded(M->Children.size());
      O = Object::asPointer(O->getSlot(static_cast<uint32_t>(K) + 1));
      M = M->Children[K];
    }
    return {O, M};
  }

  /// Allocates a node with a tag and up to 3 edges to existing objects,
  /// pinning targets exactly as the write barrier would.
  void allocateObject() {
    uint32_t NumEdges = static_cast<uint32_t>(R.nextBounded(4));
    // Collect targets BEFORE allocating (allocation cannot move anything
    // here — no collection runs inside allocate — but keep the discipline
    // obvious).
    std::vector<std::pair<Object *, ModelNode *>> Targets;
    for (uint32_t I = 0; I < NumEdges; ++I) {
      auto T = randomLiveObject();
      if (T.first)
        Targets.push_back(T);
    }
    int HIdx = randomAliveHeap();
    Heap *H = HeapOf[static_cast<size_t>(HIdx)];
    Object *O = H->allocateObject(
        ObjKind::Array, /*Mutable=*/true,
        static_cast<uint32_t>(Targets.size()) + 1, 0);
    auto Node = std::make_unique<ModelNode>();
    Node->Tag = NextTag++;
    O->setSlot(0, (static_cast<uint64_t>(Node->Tag) << 1) | 1);

    for (size_t I = 0; I < Targets.size(); ++I) {
      Object *P = Targets[I].first;
      Heap *HP = Heap::of(P);
      // The write-barrier discipline: pointers into non-ancestor heaps pin
      // the target at the LCA depth (down-pointers: the holder's depth).
      if (HP != H && !Heap::isAncestorOf(HP, H))
        HP->addPinned(P, Heap::lcaDepth(H, HP));
      O->setSlot(static_cast<uint32_t>(I) + 1, Object::fromPointer(P));
      Node->Children.push_back(Targets[I].second);
    }

    // New objects become roots half the time (else they are reachable
    // only if someone points at them — i.e. garbage here).
    if (R.nextBounded(2) == 0 || NumRoots == 0)
      addRootFor(O, Node.get());
    ModelArena.push_back(std::move(Node));
  }

  void addRootFor(Object *O, ModelNode *M) {
    RootSlots.push_back(Object::fromPointer(O));
    ModelRoots.push_back(M);
    RootBase = RootSlots.data();
    NumRoots = RootSlots.size();
  }

  void addRoot() {
    auto T = randomLiveObject();
    if (T.first)
      addRootFor(T.first, T.second);
  }

  void dropRoot() {
    if (NumRoots <= 1)
      return;
    size_t I = R.nextBounded(NumRoots);
    RootSlots.erase(RootSlots.begin() + static_cast<long>(I));
    ModelRoots.erase(ModelRoots.begin() + static_cast<long>(I));
    RootBase = RootSlots.data();
    NumRoots = RootSlots.size();
  }

  //===-- Validation ------------------------------------------------------===

  void checkIso(const Object *O, const ModelNode *M,
                std::map<const Object *, const ModelNode *> &Seen) {
    ASSERT_NE(O, nullptr);
    auto It = Seen.find(O);
    if (It != Seen.end()) {
      // Sharing must agree with the model.
      ASSERT_EQ(It->second, M) << "sharing mismatch at tag " << M->Tag;
      return;
    }
    Seen.emplace(O, M);
    ASSERT_FALSE(O->isForwarded()) << "dangling forwarded object";
    ASSERT_EQ(O->kind(), ObjKind::Array);
    ASSERT_EQ(O->length(), M->Children.size() + 1);
    ASSERT_EQ(static_cast<int64_t>(O->getSlot(0)) >> 1, M->Tag);
    for (size_t I = 0; I < M->Children.size(); ++I)
      checkIso(Object::asPointer(O->getSlot(static_cast<uint32_t>(I) + 1)),
               M->Children[I], Seen);
  }

  Rng R;
  HeapManager HM;
  Collector GC;
  ShadowStack Stack;

  std::vector<Heap *> HeapOf;
  std::vector<int> ParentOf;
  std::vector<bool> Alive;
  std::vector<int> LiveKids;

  std::vector<Slot> RootSlots;
  std::vector<ModelNode *> ModelRoots;
  Slot *RootBase = nullptr;
  size_t NumRoots = 0;

  std::vector<std::unique_ptr<ModelNode>> ModelArena;
  int64_t NextTag = 0;
  int64_t NumCollections = 0;
};

class GcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(GcPropertyTest, ReachableGraphAlwaysIsomorphicToModel) {
  PropertyHarness H(GetParam());
  for (int Batch = 0; Batch < 40; ++Batch) {
    for (int S = 0; S < 25; ++S)
      H.step();
    H.validate();
    if (::testing::Test::HasFatalFailure())
      return;
  }
  // The run must actually have exercised collection.
  EXPECT_GT(H.collections(), 0);
  EXPECT_GT(H.allocations(), 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233),
                         [](const ::testing::TestParamInfo<uint64_t> &I) {
                           return "seed" + std::to_string(I.param);
                         });

//===----------------------------------------------------------------------===//
// Random effect-handler programs: the capture pin protocol never leaks
//===----------------------------------------------------------------------===//

namespace {

/// A generated pml program together with the value it must print and the
/// number of performs it executes (== captures == resumes: every
/// generated arm resumes exactly once).
struct EffectProgram {
  std::string Src;
  int64_t Expected = 0;
  int64_t Performs = 0;
};

/// Builds a random handler-nesting / perform-depth program. Shape:
///
///   effect E0 .. E{D-1}
///   fun dive<i> n x = if n = 0 then perform E<i> x
///                     else (dive<i> (n - 1) x) + 0   -- non-tail: real depth
///   <handlers nested D deep around a sum of perform terms>
///
/// Every arm for E<i> resumes with (x + C<i>) — some through a nested par
/// (resume on another strand, deeper than the capture). The whole handled
/// expression itself randomly runs inside a par branch, so captures happen
/// at heap depth > 0 and the capture pins actually fire. The printed value
/// is sum over terms of (payload + C<effect>) by construction.
EffectProgram generate(uint64_t Seed) {
  Rng R(Seed);
  int D = 1 + static_cast<int>(R.nextBounded(3));  // handler nesting
  int T = 1 + static_cast<int>(R.nextBounded(4));  // perform terms
  bool ParWrap = R.nextBounded(2) == 0;            // handle inside a par?
  std::vector<int64_t> C;                          // arm increments
  std::vector<bool> ParResume;                     // resume via nested par?
  for (int I = 0; I < D; ++I) {
    C.push_back(static_cast<int64_t>(R.nextBounded(50)));
    ParResume.push_back(R.nextBounded(3) == 0);
  }

  EffectProgram P;
  std::string S;
  for (int I = 0; I < D; ++I)
    S += "effect E" + std::to_string(I) + "\n";
  for (int I = 0; I < D; ++I) {
    std::string N = std::to_string(I);
    S += "fun dive" + N + " n x = if n = 0 then perform E" + N +
         " x else (dive" + N + " (n - 1) x) + 0\n";
  }

  std::string Body;
  for (int J = 0; J < T; ++J) {
    int E = static_cast<int>(R.nextBounded(static_cast<uint64_t>(D)));
    int64_t A = static_cast<int64_t>(R.nextBounded(100));
    int Depth = static_cast<int>(R.nextBounded(6));
    if (J)
      Body += " + ";
    Body += "(dive" + std::to_string(E) + " " + std::to_string(Depth) + " " +
            std::to_string(A) + ")";
    P.Expected += A + C[static_cast<size_t>(E)];
    ++P.Performs;
  }

  // Innermost handler is E{D-1}; every perform of E<i> is answered by its
  // own handler (each effect has exactly one).
  std::string H = Body;
  for (int I = D - 1; I >= 0; --I) {
    std::string N = std::to_string(I);
    std::string Resume = "resume k (x + " + std::to_string(C[static_cast<size_t>(I)]) + ")";
    std::string Arm = ParResume[static_cast<size_t>(I)]
                          ? "fst (par (" + Resume + ", 1))"
                          : Resume;
    H = "(handle " + H + " with | E" + N + " x k => " + Arm + " end)";
  }
  S += ParWrap ? "printInt (fst (par (" + H + ", 1)))"
               : "printInt (" + H + ")";
  P.Src = std::move(S);
  return P;
}

class EffectHandlerProperty : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(EffectHandlerProperty, CapturePinsNeverLeakAndAttributionBalances) {
  EffectProgram P = generate(GetParam());
  SCOPED_TRACE(P.Src);

  // Half the seeds run their generated program under the JIT tier at
  // threshold 1: the capture pin protocol and the site attribution must
  // balance identically when performs/resumes cross native frames.
  bool UseJit = GetParam() % 2 == 0;
  jit::setCompileThreshold(1);
  jit::setEnabled(UseJit);

  em::Counts.reset();
  obs::Profiler &Prof = obs::Profiler::get();
  Prof.reset();
  Prof.enable();

  bool Ok = false;
  std::string Out, Val, TyS, Err;
  {
    rt::Config Cfg;
    Cfg.NumWorkers = 1 + static_cast<int>(GetParam() % 3);
    Cfg.GcMinBytes = 1 << 16; // Collections race parked continuations.
    rt::Runtime Rt(Cfg);
    Rt.run([&] {
      std::vector<std::string> Errs;
      Ok = pml::evalSource(P.Src, Out, Val, TyS, Errs);
      if (!Errs.empty())
        Err = Errs[0];
      em::InvariantReport Rep =
          em::verifyInvariants(/*ExpectFullyJoined=*/true);
      EXPECT_TRUE(Rep.ok()) << Rep.str();
    });
  }
  jit::setEnabled(false);
  jit::setCompileThreshold(64);
  ASSERT_TRUE(Ok) << Err;
  EXPECT_EQ(Out, std::to_string(P.Expected) + "\n");

  em::CounterSnapshot Snap = em::Counts.snapshot();
  EXPECT_EQ(Snap.ContCaptured, P.Performs);
  EXPECT_EQ(Snap.ContResumed, P.Performs) << "every generated arm resumes";
  EXPECT_EQ(Snap.livePinnedObjects(), 0) << "leaked pins after the run";
  EXPECT_EQ(Snap.livePinnedBytes(), 0);

  // These programs share no refs or arrays across strands, so *every* pin
  // is a capture pin: the em.cont.capture site must account for all of
  // the pinned bytes (both zero when the captures happened at depth 0).
  std::vector<obs::ProfileSiteSnap> Sites = Prof.snapshot();
  Prof.disable();
  int64_t SiteBytes = 0, SiteEvents = 0;
  for (const obs::ProfileSiteSnap &SS : Sites)
    if (SS.Name == "em.cont.capture") {
      SiteBytes += SS.Bytes;
      SiteEvents += SS.Events;
    }
  EXPECT_EQ(SiteEvents, Snap.PinnedObjects);
  EXPECT_EQ(SiteBytes, Snap.PinnedBytes)
      << "capture-site attribution must sum to the pinned bytes";
  EXPECT_EQ(Prof.livePinCount(), 0) << "profiler pin-lifetime table drained";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EffectHandlerProperty,
                         ::testing::Range<uint64_t>(1, 17),
                         [](const ::testing::TestParamInfo<uint64_t> &I) {
                           return "seed" + std::to_string(I.param);
                         });

// Tier determinism as a property: the same generated program, run twice
// under the JIT at one worker, compiles the same number of functions and
// prints the same value — tier checks happen only at frame boundaries, so
// a deterministic schedule replays its tier decisions exactly.
TEST(EffectHandlerJit, GeneratedProgramsTierDeterministically) {
  for (uint64_t Seed : {uint64_t(3), uint64_t(9), uint64_t(14)}) {
    EffectProgram P = generate(Seed);
    SCOPED_TRACE(P.Src);
    auto runOnce = [&](std::string &Out, int64_t &Compiled) {
      jit::setCompileThreshold(1);
      jit::setEnabled(true);
      StatRegistry::get().resetAll();
      rt::Config Cfg;
      Cfg.NumWorkers = 1;
      Cfg.GcMinBytes = 1 << 16;
      rt::Runtime Rt(Cfg);
      bool Ok = false;
      Rt.run([&] {
        std::string Val, TyS;
        std::vector<std::string> Errs;
        Ok = pml::evalSource(P.Src, Out, Val, TyS, Errs);
      });
      Compiled = StatRegistry::get().valueOf("pml.jit.compiled");
      jit::setEnabled(false);
      jit::setCompileThreshold(64);
      ASSERT_TRUE(Ok);
    };
    std::string OutA, OutB;
    int64_t CompA = 0, CompB = 0;
    runOnce(OutA, CompA);
    runOnce(OutB, CompB);
    EXPECT_EQ(OutA, std::to_string(P.Expected) + "\n");
    EXPECT_EQ(OutA, OutB);
    EXPECT_EQ(CompA, CompB);
    if (!jit::tsanForcedOff() && MPL_JIT_SUPPORTED) {
      EXPECT_GT(CompA, 0) << "generated program never tiered up";
    }
  }
}
