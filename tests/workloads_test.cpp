//===- tests/workloads_test.cpp - Benchmark kernel correctness ------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Every benchmark kernel is validated against an independly computed
// expected result, across worker counts (parameterized), so that the bench
// numbers later measure *correct* executions.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "workloads/Collections.h"
#include "workloads/Entangled.h"
#include "workloads/Graph.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace mpl;
using namespace mpl::ops;

namespace {

class WorkloadsTest : public ::testing::TestWithParam<int> {
protected:
  rt::Config cfg() {
    rt::Config C;
    C.NumWorkers = GetParam();
    C.Profile = false;
    C.GcMinBytes = 1 << 19; // Aggressive GC in tests.
    return C;
  }
};

} // namespace

TEST_P(WorkloadsTest, Fib) {
  rt::Runtime R(cfg());
  int64_t Got = 0;
  R.run([&] { Got = wl::fib(24, 10); });
  EXPECT_EQ(Got, 46368);
}

TEST_P(WorkloadsTest, TabulateAndSum) {
  rt::Runtime R(cfg());
  int64_t Sum = 0;
  R.run([&] {
    Local A(wl::tabulate(10000, [](int64_t I) { return boxInt(I * I); }, 256));
    Sum = wl::sumInts(A.get(), 256);
  });
  int64_t Expect = 0;
  for (int64_t I = 0; I < 10000; ++I)
    Expect += I * I;
  EXPECT_EQ(Sum, Expect);
}

TEST_P(WorkloadsTest, ScanPlus) {
  rt::Runtime R(cfg());
  std::vector<int64_t> Got;
  int64_t Total = 0;
  R.run([&] {
    Local A(wl::tabulate(1000, [](int64_t I) { return boxInt(I + 1); }, 64));
    Local S(wl::scanPlus(A.get(), 64));
    Local Sums(Object::asPointer(recGet(S.get(), 0)));
    Total = unboxInt(recGet(S.get(), 1));
    for (uint32_t I = 0; I < 1000; ++I)
      Got.push_back(unboxInt(arrGet(Sums.get(), I)));
  });
  EXPECT_EQ(Total, 1000 * 1001 / 2);
  int64_t Acc = 0;
  for (int64_t I = 0; I < 1000; ++I) {
    EXPECT_EQ(Got[static_cast<size_t>(I)], Acc);
    Acc += I + 1;
  }
}

static bool isEven(int64_t V) { return V % 2 == 0; }

TEST_P(WorkloadsTest, FilterInts) {
  rt::Runtime R(cfg());
  std::vector<int64_t> Got;
  R.run([&] {
    Local A(wl::tabulate(1000, [](int64_t I) { return boxInt(I); }, 64));
    Local F(wl::filterInts(A.get(), isEven, 64));
    for (uint32_t I = 0, E = arrLen(F.get()); I < E; ++I)
      Got.push_back(unboxInt(arrGet(F.get(), I)));
  });
  ASSERT_EQ(Got.size(), 500u);
  for (size_t I = 0; I < Got.size(); ++I)
    EXPECT_EQ(Got[I], static_cast<int64_t>(2 * I));
}

TEST_P(WorkloadsTest, MaxInts) {
  rt::Runtime R(cfg());
  int64_t Got = 0;
  R.run([&] {
    Local A(wl::randomInts(5000, 1 << 30, 17));
    int64_t Expect = INT64_MIN;
    for (uint32_t I = 0; I < 5000; ++I)
      Expect = std::max(Expect, unboxInt(arrGet(A.get(), I)));
    Got = wl::maxInts(A.get(), 128) - Expect;
  });
  EXPECT_EQ(Got, 0);
}

TEST_P(WorkloadsTest, MergesortSortsRandomInput) {
  rt::Runtime R(cfg());
  bool Sorted = false;
  int64_t SumBefore = 0, SumAfter = 0;
  R.run([&] {
    Local A(wl::randomInts(20000, 1 << 20, 42));
    SumBefore = wl::sumInts(A.get());
    Local S(wl::mergesortInts(A.get(), 512));
    Sorted = wl::isSortedInts(S.get());
    SumAfter = wl::sumInts(S.get());
    EXPECT_EQ(arrLen(S.get()), 20000u);
  });
  EXPECT_TRUE(Sorted);
  EXPECT_EQ(SumBefore, SumAfter) << "sorting must permute, not alter";
}

TEST_P(WorkloadsTest, MergesortEdgeCases) {
  rt::Runtime R(cfg());
  R.run([&] {
    // Empty.
    Local E(newArray(0, boxInt(0)));
    Local SE(wl::mergesortInts(E.get()));
    EXPECT_EQ(arrLen(SE.get()), 0u);
    // Single.
    Local One(newArray(1, boxInt(7)));
    Local SOne(wl::mergesortInts(One.get()));
    EXPECT_EQ(unboxInt(arrGet(SOne.get(), 0)), 7);
    // All equal.
    Local Eq(newArray(100, boxInt(5)));
    Local SEq(wl::mergesortInts(Eq.get(), 16));
    EXPECT_TRUE(wl::isSortedInts(SEq.get()));
    // Reverse sorted, with negatives.
    Local Rev(wl::tabulate(500, [](int64_t I) { return boxInt(250 - I); }, 32));
    Local SRev(wl::mergesortInts(Rev.get(), 16));
    EXPECT_TRUE(wl::isSortedInts(SRev.get()));
    EXPECT_EQ(unboxInt(arrGet(SRev.get(), 0)), 250 - 499);
  });
}

TEST_P(WorkloadsTest, QuicksortMatchesMergesort) {
  rt::Runtime R(cfg());
  bool Match = true;
  R.run([&] {
    Local A(wl::randomInts(8000, 1000, 9)); // Many duplicates.
    Local S1(wl::mergesortInts(A.get(), 256));
    Local S2(wl::quicksortInts(A.get(), 256));
    ASSERT_EQ(arrLen(S1.get()), arrLen(S2.get()));
    for (uint32_t I = 0, E = arrLen(S1.get()); I < E; ++I)
      Match &= arrGet(S1.get(), I) == arrGet(S2.get(), I);
  });
  EXPECT_TRUE(Match);
}

TEST_P(WorkloadsTest, NQueensKnownCounts) {
  rt::Runtime R(cfg());
  int64_t Q6 = 0, Q8 = 0;
  R.run([&] {
    Q6 = wl::nqueens(6);
    Q8 = wl::nqueens(8);
  });
  EXPECT_EQ(Q6, 4);
  EXPECT_EQ(Q8, 92);
}

TEST_P(WorkloadsTest, PrimesKnownCounts) {
  rt::Runtime R(cfg());
  int64_t Count = 0;
  int64_t Last = 0;
  R.run([&] {
    Local P(wl::primesUpTo(10000));
    Count = arrLen(P.get());
    Last = unboxInt(arrGet(P.get(), static_cast<uint32_t>(Count - 1)));
    EXPECT_EQ(unboxInt(arrGet(P.get(), 0)), 2);
    EXPECT_EQ(unboxInt(arrGet(P.get(), 3)), 7);
  });
  EXPECT_EQ(Count, 1229); // pi(10^4)
  EXPECT_EQ(Last, 9973);
}

TEST_P(WorkloadsTest, TokensMatchesSequentialCount) {
  rt::Runtime R(cfg());
  int64_t Got = 0, Expect = 0;
  R.run([&] {
    Local T(wl::randomText(100000, 3));
    // Sequential reference count.
    const char *D = strBytes(T.get());
    int64_t Len = static_cast<int64_t>(strLen(T.get()));
    auto Sp = [](char C) { return C == ' ' || C == '\n' || C == '\t'; };
    for (int64_t I = 0; I < Len; ++I)
      if (!Sp(D[I]) && (I == 0 || Sp(D[I - 1])))
        ++Expect;
    Got = wl::tokens(T.get(), 1024);
  });
  EXPECT_EQ(Got, Expect);
  EXPECT_GT(Got, 0);
}

TEST_P(WorkloadsTest, HistogramCountsAll) {
  rt::Runtime R(cfg());
  std::vector<int64_t> Got;
  constexpr int64_t N = 20000, Buckets = 32;
  R.run([&] {
    Local A(wl::randomInts(N, Buckets, 5));
    Local H(wl::histogram(A.get(), Buckets, 256));
    for (uint32_t I = 0; I < Buckets; ++I)
      Got.push_back(unboxInt(arrGet(H.get(), I)));
  });
  int64_t Total = 0;
  for (int64_t C : Got) {
    EXPECT_GE(C, 0);
    Total += C;
  }
  EXPECT_EQ(Total, N);
}

TEST_P(WorkloadsTest, BfsReachesEverythingWithValidParents) {
  rt::Runtime R(cfg());
  int64_t Reached = 0;
  constexpr int64_t N = 3000;
  R.run([&] {
    Local G(wl::buildRandomGraph(N, 4, 11));
    Local P(wl::bfs(G.get(), 0));
    Reached = wl::countReached(P.get());
    // Parent edges must exist in the graph.
    wl::GraphView V = wl::GraphView::of(G.get());
    const int64_t *Par = reinterpret_cast<const int64_t *>(P.get()->slots());
    for (int64_t U = 0; U < N; ++U) {
      if (U == 0) {
        EXPECT_EQ(Par[U], -1);
        continue;
      }
      int64_t Pu = Par[U];
      ASSERT_GE(Pu, 0);
      bool Found = false;
      for (int64_t E = V.Offsets[Pu]; E < V.Offsets[Pu + 1]; ++E)
        Found |= V.Edges[E] == U;
      EXPECT_TRUE(Found) << "parent edge " << Pu << "->" << U;
    }
  });
  EXPECT_EQ(Reached, N);
}

//===----------------------------------------------------------------------===//
// Entangled workloads
//===----------------------------------------------------------------------===//

TEST_P(WorkloadsTest, HashSetBasic) {
  rt::Runtime R(cfg());
  R.run([&] {
    Local T(wl::HashSet::create(100));
    EXPECT_TRUE(wl::HashSet::insert(T.get(), 42));
    EXPECT_FALSE(wl::HashSet::insert(T.get(), 42));
    EXPECT_TRUE(wl::HashSet::insert(T.get(), 43));
    EXPECT_TRUE(wl::HashSet::contains(T.get(), 42));
    EXPECT_FALSE(wl::HashSet::contains(T.get(), 41));
    EXPECT_EQ(wl::HashSet::size(T.get()), 2);
  });
}

TEST_P(WorkloadsTest, DedupCountsDistinctKeys) {
  rt::Runtime R(cfg());
  int64_t Got = 0, Expect = 0;
  R.run([&] {
    Local Keys(wl::randomInts(5000, 700, 23)); // Guaranteed duplicates.
    std::set<int64_t> Ref;
    for (uint32_t I = 0; I < 5000; ++I)
      Ref.insert(unboxInt(arrGet(Keys.get(), I)));
    Expect = static_cast<int64_t>(Ref.size());
    Got = wl::dedup(Keys.get(), 128);
  });
  EXPECT_EQ(Got, Expect);
}

TEST_P(WorkloadsTest, DedupIsEntangledUnderParallelism) {
  StatRegistry::get().resetAll();
  rt::Runtime R(cfg());
  R.run([&] {
    Local Keys(wl::randomInts(4000, 500, 7));
    wl::dedup(Keys.get(), 64);
  });
  // Publishing boxes into the shared table must pin (down-pointers).
  EXPECT_GT(StatRegistry::get().valueOf("em.pins.down"), 0);
}

TEST_P(WorkloadsTest, ChannelPipelineDeliversEverything) {
  rt::Runtime R(cfg());
  int64_t Sum = 0;
  constexpr int64_t N = 3000;
  R.run([&] { Sum = wl::channelPipeline(N); });
  EXPECT_EQ(Sum, N * (N - 1) / 2);
}

TEST_P(WorkloadsTest, ExchangeRoundTripsIntact) {
  rt::Runtime R(cfg());
  int64_t Ok = 0;
  constexpr int64_t N = 2000;
  R.run([&] { Ok = wl::exchange(N); });
  EXPECT_EQ(Ok, N);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkloadsTest, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return "P" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Quickhull
//===----------------------------------------------------------------------===//

#include "baseline/Native.h"
#include "workloads/Quickhull.h"

TEST_P(WorkloadsTest, QuickhullMatchesMonotoneChain) {
  rt::Runtime R(cfg());
  int64_t Got = 0;
  R.run([&] {
    Local P(wl::randomPoints(3000, 17));
    Got = wl::quickhullCount(P.get(), 256);
  });
  std::vector<int64_t> Xs, Ys;
  nat::randomPoints(3000, 17, Xs, Ys);
  EXPECT_EQ(Got, nat::convexHullCount(Xs, Ys));
  EXPECT_GE(Got, 3);
}

TEST_P(WorkloadsTest, QuickhullSequentialAndParallelAgree) {
  rt::Runtime R(cfg());
  int64_t Par = 0, Seq = 0;
  R.run([&] {
    Local P(wl::randomPoints(2000, 5));
    Par = wl::quickhullCount(P.get(), 128);
    Seq = wl::quickhullCount(P.get(), 1 << 30);
  });
  EXPECT_EQ(Par, Seq);
}

TEST_P(WorkloadsTest, QuickhullDegenerateSmallInputs) {
  rt::Runtime R(cfg());
  int64_t Tri = 0;
  R.run([&] {
    // A triangle: hull is all three points.
    Local Xs(newRawArray(3 * 8));
    Local Ys(newRawArray(3 * 8));
    int64_t *X = reinterpret_cast<int64_t *>(Xs.get()->slots());
    X[0] = 0; X[1] = 10; X[2] = 5;
    int64_t *Y = reinterpret_cast<int64_t *>(Ys.get()->slots());
    Y[0] = 0; Y[1] = 0; Y[2] = 7;
    Local P(newRecord(0b110, {boxInt(3), Xs.slot(), Ys.slot()}));
    Tri = wl::quickhullCount(P.get(), 16);
  });
  EXPECT_EQ(Tri, 3);
}
