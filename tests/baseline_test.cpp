//===- tests/baseline_test.cpp - Native baselines match runtime kernels ---===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// The cross-language table (T3) is only meaningful if both sides compute
// the same thing; these tests pin the native kernels to the runtime
// kernels' results.
//
//===----------------------------------------------------------------------===//

#include "baseline/Native.h"
#include "workloads/Collections.h"
#include "workloads/Entangled.h"
#include "workloads/Graph.h"
#include "workloads/Kernels.h"

#include <gtest/gtest.h>

using namespace mpl;
using namespace mpl::ops;

TEST(BaselineTest, FibMatches) {
  rt::Runtime R({.NumWorkers = 1, .Profile = false});
  int64_t Rt = 0;
  R.run([&] { Rt = wl::fib(20, 8); });
  EXPECT_EQ(Rt, nat::fib(20));
}

TEST(BaselineTest, RandomIntsMatch) {
  rt::Runtime R({.NumWorkers = 1, .Profile = false});
  std::vector<int64_t> FromRt;
  R.run([&] {
    Local A(wl::randomInts(1000, 1 << 20, 77));
    for (uint32_t I = 0; I < 1000; ++I)
      FromRt.push_back(unboxInt(arrGet(A.get(), I)));
  });
  std::vector<int64_t> FromNat = nat::randomInts(1000, 1 << 20, 77);
  EXPECT_EQ(FromRt, FromNat) << "same seed derivation on both sides";
}

TEST(BaselineTest, SortsAgree) {
  std::vector<int64_t> V = nat::randomInts(20000, 1 << 16, 3);
  std::vector<int64_t> A = nat::sortIdiomatic(V);
  std::vector<int64_t> B = nat::msortFunctional(V);
  EXPECT_EQ(A, B);
  EXPECT_TRUE(std::is_sorted(A.begin(), A.end()));
}

TEST(BaselineTest, SortMatchesRuntimeSort) {
  rt::Runtime R({.NumWorkers = 1, .Profile = false});
  std::vector<int64_t> FromRt;
  R.run([&] {
    Local A(wl::randomInts(5000, 1 << 16, 3));
    Local S(wl::mergesortInts(A.get(), 256));
    for (uint32_t I = 0; I < 5000; ++I)
      FromRt.push_back(unboxInt(arrGet(S.get(), I)));
  });
  std::vector<int64_t> Expect =
      nat::sortIdiomatic(nat::randomInts(5000, 1 << 16, 3));
  EXPECT_EQ(FromRt, Expect);
}

TEST(BaselineTest, NQueensMatches) {
  rt::Runtime R({.NumWorkers = 1, .Profile = false});
  int64_t Rt = 0;
  R.run([&] { Rt = wl::nqueens(8); });
  EXPECT_EQ(Rt, nat::nqueens(8));
  EXPECT_EQ(nat::nqueens(6), 4);
}

TEST(BaselineTest, PrimesMatch) {
  rt::Runtime R({.NumWorkers = 1, .Profile = false});
  int64_t Count = 0;
  R.run([&] {
    Local P(wl::primesUpTo(50000));
    Count = arrLen(P.get());
  });
  EXPECT_EQ(Count, nat::primesCount(50000));
}

TEST(BaselineTest, TokensMatch) {
  rt::Runtime R({.NumWorkers = 1, .Profile = false});
  int64_t Rt = 0;
  R.run([&] {
    Local T(wl::randomText(50000, 5));
    Rt = wl::tokens(T.get());
  });
  EXPECT_EQ(Rt, nat::tokens(nat::randomText(50000, 5)));
}

TEST(BaselineTest, DedupMatches) {
  rt::Runtime R({.NumWorkers = 1, .Profile = false});
  int64_t Rt = 0;
  R.run([&] {
    Local K(wl::randomInts(4000, 600, 13));
    Rt = wl::dedup(K.get(), 128);
  });
  EXPECT_EQ(Rt, nat::dedupIdiomatic(nat::randomInts(4000, 600, 13)));
}

TEST(BaselineTest, GraphsIdenticalAndBfsAgrees) {
  nat::Graph NG = nat::buildRandomGraph(2000, 4, 11);
  rt::Runtime R({.NumWorkers = 1, .Profile = false});
  int64_t Reached = 0;
  R.run([&] {
    Local G(wl::buildRandomGraph(2000, 4, 11));
    wl::GraphView V = wl::GraphView::of(G.get());
    ASSERT_EQ(V.NumVertices, NG.N);
    ASSERT_EQ(V.NumEdges,
              static_cast<int64_t>(NG.Edges.size()));
    for (int64_t I = 0; I <= 2000; ++I)
      ASSERT_EQ(V.Offsets[I], NG.Offsets[static_cast<size_t>(I)]);
    for (size_t I = 0; I < NG.Edges.size(); ++I)
      ASSERT_EQ(V.Edges[I], NG.Edges[I]);
    Local P(wl::bfs(G.get(), 0));
    Reached = wl::countReached(P.get());
  });
  EXPECT_EQ(Reached, nat::bfsReached(NG, 0));
  EXPECT_EQ(Reached, 2000);
}

TEST(BaselineTest, HistogramMatches) {
  std::vector<int64_t> V = nat::randomInts(10000, 64, 21);
  std::vector<int64_t> NH = nat::histogram(V, 64);
  rt::Runtime R({.NumWorkers = 1, .Profile = false});
  std::vector<int64_t> RH;
  R.run([&] {
    Local A(wl::randomInts(10000, 64, 21));
    Local H(wl::histogram(A.get(), 64, 512));
    for (uint32_t I = 0; I < 64; ++I)
      RH.push_back(unboxInt(arrGet(H.get(), I)));
  });
  EXPECT_EQ(RH, NH);
}
