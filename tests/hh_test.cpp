//===- tests/hh_test.cpp - Unit tests for hierarchical heaps --------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "hh/Heap.h"

#include <gtest/gtest.h>

using namespace mpl;

namespace {
struct HierarchyFixture : ::testing::Test {
  HeapManager HM;
};
} // namespace

TEST_F(HierarchyFixture, RootAndChildrenDepths) {
  Heap *Root = HM.createRoot();
  EXPECT_EQ(Root->depth(), 0u);
  EXPECT_EQ(Root->parent(), nullptr);
  Heap *A = HM.forkChild(Root);
  Heap *B = HM.forkChild(Root);
  EXPECT_EQ(A->depth(), 1u);
  EXPECT_EQ(B->depth(), 1u);
  EXPECT_EQ(A->parent(), Root);
  Heap *AA = HM.forkChild(A);
  EXPECT_EQ(AA->depth(), 2u);
}

TEST_F(HierarchyFixture, AncestorQueries) {
  Heap *Root = HM.createRoot();
  Heap *A = HM.forkChild(Root);
  Heap *B = HM.forkChild(Root);
  Heap *AA = HM.forkChild(A);

  EXPECT_TRUE(Heap::isAncestorOf(Root, Root));
  EXPECT_TRUE(Heap::isAncestorOf(Root, AA));
  EXPECT_TRUE(Heap::isAncestorOf(A, AA));
  EXPECT_FALSE(Heap::isAncestorOf(AA, A));
  EXPECT_FALSE(Heap::isAncestorOf(A, B));  // Concurrent siblings.
  EXPECT_FALSE(Heap::isAncestorOf(B, AA)); // Concurrent cousin.
}

TEST_F(HierarchyFixture, LcaDepth) {
  Heap *Root = HM.createRoot();
  Heap *A = HM.forkChild(Root);
  Heap *B = HM.forkChild(Root);
  Heap *AA = HM.forkChild(A);
  Heap *AB = HM.forkChild(A);

  EXPECT_EQ(Heap::lcaDepth(A, B), 0u);
  EXPECT_EQ(Heap::lcaDepth(AA, AB), 1u);
  EXPECT_EQ(Heap::lcaDepth(AA, B), 0u);
  EXPECT_EQ(Heap::lcaDepth(AA, AA), 2u);
  EXPECT_EQ(Heap::lcaDepth(Root, AA), 0u);
}

TEST_F(HierarchyFixture, AllocationBumpsWithinChunk) {
  Heap *Root = HM.createRoot();
  void *P1 = Root->allocate(32);
  void *P2 = Root->allocate(32);
  EXPECT_EQ(static_cast<char *>(P2) - static_cast<char *>(P1), 32);
  EXPECT_EQ(Chunk::chunkOf(P1), Chunk::chunkOf(P2));
  Root->releaseAllChunks();
}

TEST_F(HierarchyFixture, AllocationRoundsUpToSlotSize) {
  Heap *Root = HM.createRoot();
  void *P1 = Root->allocate(5);
  void *P2 = Root->allocate(8);
  EXPECT_EQ(static_cast<char *>(P2) - static_cast<char *>(P1), 8);
  Root->releaseAllChunks();
}

TEST_F(HierarchyFixture, AllocationSpillsToNewChunk) {
  Heap *Root = HM.createRoot();
  size_t Big = Chunk::SizeBytes / 4;
  void *First = Root->allocate(Big);
  for (int I = 0; I < 8; ++I)
    Root->allocate(Big);
  EXPECT_GT(Root->footprintBytes(), Chunk::SizeBytes);
  EXPECT_NE(Chunk::chunkOf(First)->Owner.load(), nullptr);
  Root->releaseAllChunks();
}

TEST_F(HierarchyFixture, LargeObjectGetsOwnChunk) {
  Heap *Root = HM.createRoot();
  void *Small = Root->allocate(64);
  void *Huge = Root->allocate(Chunk::SizeBytes); // > half a chunk
  EXPECT_NE(Chunk::chunkOf(Small), Chunk::chunkOf(Huge));
  EXPECT_TRUE(Chunk::chunkOf(Huge)->Large);
  // Small allocations continue in the bump chunk.
  void *Small2 = Root->allocate(64);
  EXPECT_EQ(Chunk::chunkOf(Small), Chunk::chunkOf(Small2));
  Root->releaseAllChunks();
}

TEST_F(HierarchyFixture, HeapOfMapsObjects) {
  Heap *Root = HM.createRoot();
  Heap *A = HM.forkChild(Root);
  Object *O1 = Root->allocateObject(ObjKind::Ref, true, 1, 0);
  Object *O2 = A->allocateObject(ObjKind::Ref, true, 1, 0);
  EXPECT_EQ(Heap::of(O1), Root);
  EXPECT_EQ(Heap::of(O2), A);
  Root->releaseAllChunks();
  A->releaseAllChunks();
}

TEST_F(HierarchyFixture, JoinRehomesChunksAndObjects) {
  Heap *Root = HM.createRoot();
  Heap *A = HM.forkChild(Root);
  Object *O = A->allocateObject(ObjKind::Ref, true, 1, 0);
  EXPECT_EQ(Heap::of(O), A);
  HM.join(Root, A);
  EXPECT_EQ(Heap::of(O), Root);
  EXPECT_TRUE(A->isDead());
  Root->releaseAllChunks();
}

TEST_F(HierarchyFixture, JoinUnpinsAtUnpinDepth) {
  Heap *Root = HM.createRoot();
  Heap *A = HM.forkChild(Root);
  Object *O = A->allocateObject(ObjKind::Ref, true, 1, 0);
  // Pinned at depth 0: a depth-0 holder can reach it; entanglement dies
  // when the object reaches depth 0.
  A->addPinned(O, 0);
  EXPECT_TRUE(O->isPinned());
  int64_t Unpinned = HM.join(Root, A);
  EXPECT_EQ(Unpinned, 1);
  EXPECT_FALSE(O->isPinned());
  Root->releaseAllChunks();
}

TEST_F(HierarchyFixture, JoinKeepsDeeperPinsAlive) {
  Heap *Root = HM.createRoot();
  Heap *A = HM.forkChild(Root);
  Heap *AA = HM.forkChild(A);
  Object *O = AA->allocateObject(ObjKind::Ref, true, 1, 0);
  // Pinned at depth 0, but we join only to depth 1: the pin must survive
  // and transfer to the parent's pinned set.
  AA->addPinned(O, 0);
  int64_t Unpinned = HM.join(A, AA);
  EXPECT_EQ(Unpinned, 0);
  EXPECT_TRUE(O->isPinned());
  ASSERT_EQ(A->Pinned.size(), 1u);
  EXPECT_EQ(A->Pinned[0], O);
  // Joining to depth 0 releases it.
  Unpinned = HM.join(Root, A);
  EXPECT_EQ(Unpinned, 1);
  EXPECT_FALSE(O->isPinned());
  Root->releaseAllChunks();
}

TEST_F(HierarchyFixture, AddPinnedIsIdempotent) {
  Heap *Root = HM.createRoot();
  Object *O = Root->allocateObject(ObjKind::Ref, true, 1, 0);
  Root->addPinned(O, 3);
  Root->addPinned(O, 1); // Deepens, must not duplicate.
  Root->addPinned(O, 5); // Shallower than current: ignored.
  EXPECT_EQ(Root->Pinned.size(), 1u);
  EXPECT_EQ(O->unpinDepth(), 1u);
  Root->releaseAllChunks();
}

TEST_F(HierarchyFixture, ActiveForksLifecycle) {
  Heap *Root = HM.createRoot();
  EXPECT_EQ(Root->activeForks(), 0);
  Root->setActiveForks(2);
  EXPECT_EQ(Root->activeForks(), 2);
  Root->decActiveForks();
  EXPECT_EQ(Root->activeForks(), 1);
  Root->setActiveForks(0);
  EXPECT_EQ(Root->activeForks(), 0);
}

TEST_F(HierarchyFixture, FootprintReflectsAllocation) {
  Heap *Root = HM.createRoot();
  EXPECT_EQ(Root->footprintBytes(), 0u);
  Root->allocate(128);
  EXPECT_EQ(Root->footprintBytes(), Chunk::SizeBytes);
  Root->releaseAllChunks();
  EXPECT_EQ(Root->footprintBytes(), 0u);
}
