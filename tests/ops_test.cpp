//===- tests/ops_test.cpp - Typed heap operation tests --------------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Handles.h"
#include "core/Ops.h"
#include "core/Runtime.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

using namespace mpl;
using namespace mpl::ops;

namespace {
struct OpsFixture : ::testing::Test {
  rt::Runtime R{{.NumWorkers = 1, .Profile = false}};

  template <typename Fn> void inTask(Fn &&F) {
    R.run(std::forward<Fn>(F));
  }
};
} // namespace

TEST_F(OpsFixture, IntBoxingRoundTripsExtremes) {
  constexpr int64_t Max62 = (int64_t(1) << 61) - 1;
  for (int64_t V : {int64_t(0), int64_t(1), int64_t(-1), int64_t(42),
                    int64_t(-42), Max62, -Max62}) {
    Slot S = boxInt(V);
    EXPECT_TRUE(isInt(S));
    EXPECT_EQ(unboxInt(S), V);
    EXPECT_EQ(Object::asPointer(S), nullptr)
        << "tagged ints must never look like pointers";
  }
}

TEST_F(OpsFixture, BoolBoxing) {
  EXPECT_TRUE(unboxBool(boxBool(true)));
  EXPECT_FALSE(unboxBool(boxBool(false)));
  EXPECT_TRUE(isInt(unit()));
}

TEST_F(OpsFixture, RefLifecycle) {
  inTask([&] {
    Local Cell(newRef(boxInt(1)));
    EXPECT_EQ(Cell.get()->kind(), ObjKind::Ref);
    EXPECT_TRUE(Cell.get()->isMutable());
    EXPECT_EQ(unboxInt(refGet(Cell.get())), 1);
    refSet(Cell.get(), boxInt(2));
    EXPECT_EQ(unboxInt(refGet(Cell.get())), 2);
  });
}

TEST_F(OpsFixture, RefCasSemantics) {
  inTask([&] {
    Local Cell(newRef(boxInt(10)));
    EXPECT_TRUE(refCas(Cell.get(), boxInt(10), boxInt(11)));
    EXPECT_EQ(unboxInt(refGet(Cell.get())), 11);
    EXPECT_FALSE(refCas(Cell.get(), boxInt(10), boxInt(12)))
        << "CAS with stale expected value must fail";
    EXPECT_EQ(unboxInt(refGet(Cell.get())), 11);
  });
}

TEST_F(OpsFixture, ArrayLifecycleAndCas) {
  inTask([&] {
    Local A(newArray(16, boxInt(7)));
    EXPECT_EQ(arrLen(A.get()), 16u);
    for (uint32_t I = 0; I < 16; ++I)
      EXPECT_EQ(unboxInt(arrGet(A.get(), I)), 7);
    arrSet(A.get(), 3, boxInt(9));
    EXPECT_EQ(unboxInt(arrGet(A.get(), 3)), 9);
    EXPECT_TRUE(arrCas(A.get(), 3, boxInt(9), boxInt(10)));
    EXPECT_FALSE(arrCas(A.get(), 3, boxInt(9), boxInt(11)));
    EXPECT_EQ(unboxInt(arrGet(A.get(), 3)), 10);
  });
}

TEST_F(OpsFixture, EmptyArray) {
  inTask([&] {
    Local A(newArray(0, boxInt(0)));
    EXPECT_EQ(arrLen(A.get()), 0u);
  });
}

TEST_F(OpsFixture, RecordPtrMapMixedFields) {
  inTask([&] {
    Local Inner(newRef(boxInt(5)));
    Local Rec(newRecord(0b10, {boxInt(1), Inner.slot(), boxInt(3)}));
    EXPECT_FALSE(Rec.get()->isMutable());
    EXPECT_EQ(unboxInt(recGet(Rec.get(), 0)), 1);
    EXPECT_EQ(Object::asPointer(recGet(Rec.get(), 1)), Inner.get());
    EXPECT_EQ(unboxInt(recGet(Rec.get(), 2)), 3);
    // The raw fields must not be treated as pointers by the GC.
    EXPECT_TRUE(Rec.get()->slotHoldsPointer(1));
    EXPECT_FALSE(Rec.get()->slotHoldsPointer(0));
  });
}

TEST_F(OpsFixture, MutRecordRoundTrip) {
  inTask([&] {
    Local Rec(newMutRecord(0b1, {0}));
    Local Val(newRef(boxInt(6)));
    recSetMut(Rec.get(), 0, Val.slot());
    Object *Got = Object::asPointer(recGetMut(Rec.get(), 0));
    EXPECT_EQ(Got, Val.get());
  });
}

TEST_F(OpsFixture, StringRoundTrip) {
  inTask([&] {
    const char *Msg = "hello, hierarchical heaps";
    Local S(newString(Msg, std::strlen(Msg)));
    EXPECT_EQ(strLen(S.get()), std::strlen(Msg));
    EXPECT_EQ(std::memcmp(strBytes(S.get()), Msg, std::strlen(Msg)), 0);
  });
}

TEST_F(OpsFixture, EmptyString) {
  inTask([&] {
    Local S(newString("", 0));
    EXPECT_EQ(strLen(S.get()), 0u);
  });
}

TEST_F(OpsFixture, AllocationHelpersRootTheirArguments) {
  // The ops::new* helpers must survive a forced collection between
  // argument evaluation and use; we simulate by shrinking the GC budget
  // to near-zero so allocations collect almost every time.
  rt::Runtime *Prev = rt::Runtime::current();
  (void)Prev;
  inTask([&] {
    Local Inner(newRef(boxInt(123)));
    // Hammer allocations; every newRecord may collect and move Inner's
    // referent — the helper's internal rooting must keep the field valid.
    Local Keep(nullptr);
    for (int I = 0; I < 50000; ++I) {
      Object *Rec = newRecord(0b1, {Inner.slot()});
      if (I == 25000) {
        Keep.set(Rec); // Root BEFORE collecting (the handle discipline).
        rt::Runtime::current()->maybeCollect(/*Force=*/true);
      }
    }
    ASSERT_NE(Keep.get(), nullptr);
    Object *Field = Object::asPointer(recGet(Keep.get(), 0));
    ASSERT_NE(Field, nullptr);
    EXPECT_EQ(unboxInt(refGet(Field)), 123);
    EXPECT_EQ(Field, Inner.get()) << "handle and field must track together";
  });
}

TEST_F(OpsFixture, RootedBufTracksAcrossCollection) {
  inTask([&] {
    RootedBuf Buf;
    Local A(newRef(boxInt(1)));
    Buf.push(A.slot());
    Buf.push(boxInt(99));
    rt::Runtime::current()->maybeCollect(/*Force=*/true);
    // Slot 0 must have been updated if the ref moved.
    Object *Moved = Object::asPointer(Buf[0]);
    ASSERT_NE(Moved, nullptr);
    EXPECT_EQ(unboxInt(refGet(Moved)), 1);
    EXPECT_EQ(unboxInt(Buf[1]), 99);
  });
}

TEST_F(OpsFixture, LargeArrayAllocation) {
  inTask([&] {
    // Larger than half a chunk: takes the dedicated-chunk path.
    uint32_t N = (Chunk::SizeBytes / 8) * 2;
    Local A(newArray(N, boxInt(4)));
    EXPECT_EQ(arrLen(A.get()), N);
    EXPECT_EQ(unboxInt(arrGet(A.get(), 0)), 4);
    EXPECT_EQ(unboxInt(arrGet(A.get(), N - 1)), 4);
    rt::Runtime::current()->maybeCollect(/*Force=*/true);
    EXPECT_EQ(unboxInt(arrGet(A.get(), N / 2)), 4);
  });
}
