//===- tests/mm_test.cpp - Unit tests for the memory substrate ------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mm/Chunk.h"
#include "mm/Object.h"

#include <gtest/gtest.h>

using namespace mpl;

TEST(ChunkTest, AcquireGivesAlignedUsableChunk) {
  Chunk *C = ChunkPool::get().acquire();
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(C) % Chunk::SizeBytes, 0u);
  EXPECT_EQ(C->usedBytes(), 0u);
  void *P = C->tryAllocate(64);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Chunk::chunkOf(P), C);
  EXPECT_EQ(C->usedBytes(), 64u);
  ChunkPool::get().release(C);
}

TEST(ChunkTest, AllocationFailsWhenFull) {
  Chunk *C = ChunkPool::get().acquire();
  size_t Avail = static_cast<size_t>(C->Limit - C->Frontier);
  EXPECT_NE(C->tryAllocate(Avail), nullptr);
  EXPECT_EQ(C->tryAllocate(8), nullptr);
  ChunkPool::get().release(C);
}

TEST(ChunkTest, ReleaseReusesMemory) {
  Chunk *C1 = ChunkPool::get().acquire();
  ChunkPool::get().release(C1);
  Chunk *C2 = ChunkPool::get().acquire();
  EXPECT_EQ(C1, C2); // LIFO free list reuses the chunk.
  ChunkPool::get().release(C2);
}

TEST(ChunkTest, LargeChunksAlignedAndSized) {
  constexpr size_t Payload = 5 * Chunk::SizeBytes;
  Chunk *C = ChunkPool::get().acquireLarge(Payload);
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(C->Large);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(C) % Chunk::SizeBytes, 0u);
  void *P = C->tryAllocate(Payload);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Chunk::chunkOf(P), C); // Header address maps back.
  ChunkPool::get().releaseLarge(C);
}

TEST(ChunkTest, OutstandingBytesTracksLifetime) {
  int64_t Before = ChunkPool::get().outstandingBytes();
  Chunk *C = ChunkPool::get().acquire();
  EXPECT_EQ(ChunkPool::get().outstandingBytes(),
            Before + static_cast<int64_t>(Chunk::SizeBytes));
  ChunkPool::get().release(C);
  EXPECT_EQ(ChunkPool::get().outstandingBytes(), Before);
}

namespace {
/// Builds a standalone object inside a raw buffer for header tests.
struct FakeObject {
  alignas(8) unsigned char Buf[sizeof(Object) + 8 * sizeof(Slot)];
  Object *obj() { return reinterpret_cast<Object *>(Buf); }
  FakeObject(ObjKind K, bool Mut, uint32_t Len, uint16_t Map) {
    obj()->initHeader(Object::makeHeader(K, Mut, Len, Map));
  }
};
} // namespace

TEST(ObjectTest, HeaderRoundTrips) {
  FakeObject F(ObjKind::Array, /*Mut=*/true, 7, 0);
  Object *O = F.obj();
  EXPECT_EQ(O->kind(), ObjKind::Array);
  EXPECT_TRUE(O->isMutable());
  EXPECT_FALSE(O->isPinned());
  EXPECT_FALSE(O->isForwarded());
  EXPECT_EQ(O->length(), 7u);
  EXPECT_EQ(O->sizeBytes(), sizeof(Object) + 7 * sizeof(Slot));
}

TEST(ObjectTest, RecordPtrMap) {
  FakeObject F(ObjKind::Record, /*Mut=*/false, 3, 0b101);
  Object *O = F.obj();
  EXPECT_TRUE(O->slotHoldsPointer(0));
  EXPECT_FALSE(O->slotHoldsPointer(1));
  EXPECT_TRUE(O->slotHoldsPointer(2));
}

TEST(ObjectTest, RawArrayHoldsNoPointers) {
  FakeObject F(ObjKind::RawArray, /*Mut=*/true, 4, 0);
  for (uint32_t I = 0; I < 4; ++I)
    EXPECT_FALSE(F.obj()->slotHoldsPointer(I));
}

TEST(ObjectTest, PinUnpinLifecycle) {
  FakeObject F(ObjKind::Ref, /*Mut=*/true, 1, 0);
  Object *O = F.obj();
  EXPECT_TRUE(O->pinMin(5));
  EXPECT_TRUE(O->isPinned());
  EXPECT_EQ(O->unpinDepth(), 5u);
  // Re-pin deepens only downward (minimum wins).
  EXPECT_FALSE(O->pinMin(7));
  EXPECT_EQ(O->unpinDepth(), 5u);
  EXPECT_FALSE(O->pinMin(2));
  EXPECT_EQ(O->unpinDepth(), 2u);
  O->unpin();
  EXPECT_FALSE(O->isPinned());
  EXPECT_EQ(O->unpinDepth(), 0u);
}

TEST(ObjectTest, PinPreservesOtherHeaderFields) {
  FakeObject F(ObjKind::Record, /*Mut=*/true, 9, 0x1ff);
  Object *O = F.obj();
  O->pinMin(3);
  EXPECT_EQ(O->kind(), ObjKind::Record);
  EXPECT_EQ(O->length(), 9u);
  EXPECT_EQ(O->ptrMap(), 0x1ff);
  EXPECT_TRUE(O->isMutable());
  O->unpin();
  EXPECT_EQ(O->length(), 9u);
}

TEST(ObjectTest, ForwardingRoundTrips) {
  FakeObject F(ObjKind::Array, true, 2, 0);
  FakeObject G(ObjKind::Array, true, 2, 0);
  F.obj()->forwardTo(G.obj());
  EXPECT_TRUE(F.obj()->isForwarded());
  EXPECT_EQ(F.obj()->forwardee(), G.obj());
}

TEST(ObjectTest, MarkBit) {
  FakeObject F(ObjKind::Array, true, 2, 0);
  EXPECT_FALSE(F.obj()->isMarked());
  F.obj()->setMark();
  EXPECT_TRUE(F.obj()->isMarked());
  EXPECT_EQ(F.obj()->length(), 2u);
  F.obj()->clearMark();
  EXPECT_FALSE(F.obj()->isMarked());
}

TEST(ObjectTest, PointerTaggingDiscriminates) {
  FakeObject F(ObjKind::Ref, true, 1, 0);
  Slot P = Object::fromPointer(F.obj());
  EXPECT_EQ(Object::asPointer(P), F.obj());
  EXPECT_EQ(Object::asPointer(0), nullptr);            // null
  EXPECT_EQ(Object::asPointer((42 << 1) | 1), nullptr); // tagged int
  EXPECT_EQ(Object::asPointer(7), nullptr);             // misaligned
}

TEST(ObjectTest, SlotAccess) {
  FakeObject F(ObjKind::Array, true, 8, 0);
  Object *O = F.obj();
  for (uint32_t I = 0; I < 8; ++I)
    O->setSlot(I, I * 3);
  for (uint32_t I = 0; I < 8; ++I)
    EXPECT_EQ(O->getSlot(I), I * 3);
  O->storeSlotRelease(2, 99);
  EXPECT_EQ(O->loadSlotAcquire(2), 99u);
}
