//===- tests/effects_test.cpp - First-class effect handler tests ----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Conformance and differential suite for pml's effect handlers
// (effect/perform/handle/resume; DESIGN.md §13). Three layers:
//
//  1. Conformance: handler scoping and shadowing, deep-handler semantics,
//     one-shot resume enforcement, abort (dropping the continuation),
//     unhandled performs, performs through deep call chains, and resume on
//     another strand/worker — the case where the captured frames outlive
//     the heap that captured them.
//  2. Pin protocol: a capture inside a par branch pins the captured
//     objects at the capture depth; after the run every pin is released
//     (em::verifyInvariants leak check + live counter == 0), and the
//     em.cont.captured/resumed counters balance.
//  3. Differential: every effectful program runs under Manage, Detect and
//     Off and must print the identical output — effects re-establish heap
//     ancestry on resume, so a well-scoped handler program is
//     disentangled under all three modes.
//
//===----------------------------------------------------------------------===//

#include "core/Em.h"
#include "core/Runtime.h"
#include "obs/Profile.h"
#include "pml/Parser.h"
#include "pml/Types.h"
#include "pml/Vm.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mpl;
using namespace mpl::pml;

namespace {

struct EvalResult {
  bool Ok = false;
  std::string Value;
  std::string Type;
  std::string Output;
  std::string Error;
};

EvalResult evalP(const std::string &Src, int Workers = 1,
                 em::Mode Mode = em::Mode::Manage) {
  EvalResult R;
  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Profile = false;
  Cfg.GcMinBytes = 1 << 18;
  Cfg.Mode = Mode;
  rt::Runtime Rt(Cfg);
  Rt.run([&] {
    std::vector<std::string> Errs;
    R.Ok = evalSource(Src, R.Output, R.Value, R.Type, Errs);
    if (!Errs.empty())
      R.Error = Errs[0];
  });
  return R;
}

std::string typeOf(const std::string &Src) {
  std::vector<std::string> Errs;
  ExprPtr E = parseProgram(Src, Errs);
  if (!E)
    return "<parse error>";
  TypeChecker TC;
  Ty *T = TC.infer(*E, Errs);
  return T ? TypeChecker::show(T) : "<type error>";
}

//===----------------------------------------------------------------------===//
// The effectful corpus, shared with the differential layer below. Every
// program is self-checking: its expected printed output is stored next to
// it, and the differential tests additionally require the output to be
// identical across Manage/Detect/Off.
//===----------------------------------------------------------------------===//

struct EffProgram {
  const char *Name;
  const char *Src;
  const char *Expect; ///< Expected print output (the checksum).
  int Workers;        ///< Worker count exercising the interesting schedule.
};

const EffProgram Corpus[] = {
    {"basic_resume",
     "effect Ask\n"
     "fun client x = perform Ask x + perform Ask 10\n"
     "printInt (handle client 1 with | Ask n k => resume k (n * 100) end)",
     "1100\n", 1},
    {"abort_drops_continuation",
     "effect Abort\n"
     "printInt (handle 1 + perform Abort 0 with | Abort x k => 42 end)",
     "42\n", 1},
    {"nested_pass_through",
     "effect Abort\n"
     "effect Ask\n"
     "printInt (handle\n"
     "            handle perform Ask 1 with | Abort x k => 0 - 1 end\n"
     "          with | Ask n k => resume k (n + 7) end)",
     "8\n", 1},
    {"innermost_handler_wins",
     "effect E\n"
     "printInt (handle\n"
     "            handle perform E 3 with | E x k => resume k (x * 2) end\n"
     "          with | E x k => resume k 1000 end)",
     "6\n", 1},
    {"deep_perform_through_calls",
     "effect E\n"
     "fun down n = if n = 0 then perform E 0 else down (n - 1) + 1\n"
     "printInt (handle down 100 with | E x k => resume k 5 end)",
     "105\n", 1},
    {"state_encoding",
     "effect Get\n"
     "effect Put\n"
     "fun runState init body =\n"
     "  (handle (fn r => fn s => r) (body 0) with\n"
     "   | Get u k => fn s => (resume k s) s\n"
     "   | Put v k => fn s => (resume k ()) v\n"
     "   end) init\n"
     "printInt (runState 10 (fn u =>\n"
     "  let val a = perform Get ()\n"
     "  in perform Put (a * 3); perform Get () + 1 end))",
     "31\n", 1},
    {"resume_in_par_branch",
     "effect Yield\n"
     "val r =\n"
     "  handle 100 + perform Yield 0 with\n"
     "  | Yield x k =>\n"
     "      let val p = par (resume k 7, 1 + 1)\n"
     "      in fst p * snd p end\n"
     "  end\n"
     "printInt r",
     "214\n", 3},
    {"capture_in_par_resume_deeper",
     // The tentpole schedule: each par branch installs a handler, captures
     // a continuation at depth 1, and resumes it inside a nested par
     // branch at depth 2 — possibly on another worker, after the capture
     // heap gained children. 214 per branch (see resume_in_par_branch).
     "effect Yield\n"
     "fun task u =\n"
     "  handle 100 + perform Yield 0 with\n"
     "  | Yield x k =>\n"
     "      let val p = par (resume k 7, 1 + 1)\n"
     "      in fst p * snd p end\n"
     "  end\n"
     "val pr = par (task (), task ())\n"
     "printInt (fst pr + snd pr)",
     "428\n", 3},
    {"capture_resume_loop_under_gc",
     // Many capture/resume cycles so collections interleave with parked
     // continuations (the heap moves everything *around* the pinned
     // snapshot).
     "effect E\n"
     "fun step i = handle perform E i with | E x k => resume k (x + 1) end\n"
     "fun loop i acc = if i = 0 then acc else loop (i - 1) (acc + step i)\n"
     "printInt (loop 200 0)",
     "20300\n", 1},
    {"effect_shadowing_distinct_ids",
     // Two `effect E` declarations are distinct effects: the inner perform
     // resolves to the inner declaration, so only the inner handler (keyed
     // by the same declaration) answers it.
     "effect E\n"
     "val outer = handle perform E 0 with | E x k => resume k 1 end\n"
     "val inner =\n"
     "  let effect E\n"
     "  in handle perform E 0 with | E x k => resume k 2 end end\n"
     "printInt outer;\n"
     "printInt inner",
     "1\n2\n", 1},
};

class EffConformance : public ::testing::TestWithParam<EffProgram> {};
class EffDifferential : public ::testing::TestWithParam<EffProgram> {};

} // namespace

//===----------------------------------------------------------------------===//
// Conformance
//===----------------------------------------------------------------------===//

TEST_P(EffConformance, ProducesExpectedOutput) {
  const EffProgram &P = GetParam();
  EvalResult R = evalP(P.Src, P.Workers);
  ASSERT_TRUE(R.Ok) << P.Name << ": " << R.Error;
  EXPECT_EQ(R.Output, P.Expect) << P.Name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, EffConformance, ::testing::ValuesIn(Corpus),
                         [](const ::testing::TestParamInfo<EffProgram> &I) {
                           return I.param.Name;
                         });

TEST(EffHandlers, TypesOfEffectConstructs) {
  EXPECT_EQ(typeOf("effect E\n"
                   "handle perform E 0 with | E x k => resume k 1 end"),
            "int");
  // The payload and resume types are fixed per declaration: a perform and
  // an arm that disagree must be rejected.
  EXPECT_EQ(typeOf("effect E\n"
                   "handle perform E true with | E x k => resume k (x + 1) "
                   "end"),
            "<type error>");
  // Every arm body must produce the handle's answer type (here the body
  // fixes it to int, so a bool arm is rejected).
  EXPECT_EQ(typeOf("effect E\n"
                   "handle perform E 0 + 1 with | E x k => true end"),
            "<type error>");
  // When the body *is* the perform, the effect's resume type and the
  // answer type are one and the same variable: an arm that answers with a
  // bool fixes both, and the program is well-typed.
  EXPECT_EQ(typeOf("effect E\n"
                   "handle perform E 0 with | E x k => true end"),
            "bool");
  // resume of a non-continuation is a type error (the VM's dynamic check
  // is a defensive backstop behind this).
  EXPECT_EQ(typeOf("effect E\n"
                   "handle perform E 0 with | E x k => resume 5 1 end"),
            "<type error>");
}

TEST(EffHandlers, DoubleResumeIsOneShotError) {
  EvalResult R = evalP(
      "effect E\n"
      "handle perform E 0 with | E x k => resume k 1 + resume k 2 end");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("continuation already resumed (one-shot)"),
            std::string::npos)
      << R.Error;
}

TEST(EffHandlers, UnhandledPerformIsStructuredError) {
  EvalResult R = evalP("effect E\nprintInt (perform E 3)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unhandled effect 'E'"), std::string::npos)
      << R.Error;
}

TEST(EffHandlers, ShadowedEffectIsNotAnsweredByOuterHandler) {
  // The inner `effect E` is a different effect than the outer one the
  // handler was keyed on, so the perform escapes unanswered.
  EvalResult R = evalP("effect E\n"
                       "handle (let effect E in perform E 0 end) with\n"
                       "| E x k => resume k 1 end");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unhandled effect 'E'"), std::string::npos)
      << R.Error;
}

TEST(EffHandlers, EffectsAreDelimitedByPar) {
  // rt::par delimits effects: a perform inside a branch cannot be answered
  // by a handler installed outside the par (each branch is a fresh
  // delimited strand).
  EvalResult R = evalP("effect E\n"
                       "handle fst (par (perform E 0, 1)) with\n"
                       "| E x k => resume k 3 end");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unhandled effect 'E'"), std::string::npos)
      << R.Error;
}

TEST(EffHandlers, HandlerInsideParBranchWorks) {
  // ...but a handler *inside* the branch answers normally, concurrently
  // with the sibling.
  EvalResult R = evalP(
      "effect E\n"
      "val p = par ((fn u => handle perform E 1 with | E x k => resume k 9 "
      "end) 0, 2)\n"
      "printInt (fst p);\n"
      "printInt (snd p)",
      2);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "9\n2\n");
}

TEST(EffHandlers, PerformThroughForkJoinBoundary) {
  // The handled body forks and joins before performing: the capture then
  // walks frames whose heap gained and lost children in between.
  EvalResult R = evalP("effect E\n"
                       "fun body u =\n"
                       "  let val p = par (1 + 1, 2 + 2)\n"
                       "  in fst p + snd p + perform E 0 end\n"
                       "printInt (handle body () with | E x k => resume k 10 "
                       "end)",
                       2);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "16\n");
}

TEST(EffHandlers, DeepHandlerAnswersRepeatedPerformsAfterResume) {
  // Deep-handler semantics: the resume reinstalls the handler, so later
  // performs in the reinstated computation are answered by the same arms.
  EvalResult R =
      evalP("effect E\n"
            "printInt (handle perform E 1 + perform E 2 + perform E 3 with\n"
            "          | E x k => resume k (x * 10) end)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "60\n");
}

//===----------------------------------------------------------------------===//
// Pin protocol: capture pins, resume/join releases, nothing leaks
//===----------------------------------------------------------------------===//

namespace {
/// Runs \p Src under Manage with \p Workers workers, then checks full
/// quiescence: invariant pass clean, zero live pins, and the capture /
/// resume counters at the expected values.
void runAndCheckPins(const char *Src, int Workers, const char *ExpectOut,
                     int64_t ExpectCaptures, int64_t ExpectResumes) {
  em::Counts.reset();
  EvalResult R;
  rt::Config Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.Profile = false;
  Cfg.GcMinBytes = 1 << 16; // Aggressive: collections race parked conts.
  rt::Runtime Rt(Cfg);
  Rt.run([&] {
    std::vector<std::string> Errs;
    R.Ok = evalSource(Src, R.Output, R.Value, R.Type, Errs);
    if (!Errs.empty())
      R.Error = Errs[0];
    em::InvariantReport Rep = em::verifyInvariants(/*ExpectFullyJoined=*/true);
    EXPECT_TRUE(Rep.ok()) << Rep.str();
  });
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, ExpectOut);
  em::CounterSnapshot S = em::Counts.snapshot();
  EXPECT_EQ(S.ContCaptured, ExpectCaptures);
  EXPECT_EQ(S.ContResumed, ExpectResumes);
  EXPECT_EQ(S.livePinnedObjects(), 0) << "leaked pins after full join";
  EXPECT_EQ(S.livePinnedBytes(), 0);
}
} // namespace

class EffPinProtocol : public ::testing::TestWithParam<int> {};

TEST_P(EffPinProtocol, CrossWorkerResumeReleasesEveryPin) {
  // The tentpole schedule (see capture_in_par_resume_deeper in the corpus):
  // two branches each capture at depth 1 and resume at depth 2.
  runAndCheckPins(Corpus[7].Src, GetParam(), Corpus[7].Expect,
                  /*ExpectCaptures=*/2, /*ExpectResumes=*/2);
}

TEST_P(EffPinProtocol, RootCaptureParResume) {
  // Capture at depth 0 (no pins needed: GC roots keep the cont alive),
  // resume inside a par branch.
  runAndCheckPins(Corpus[6].Src, GetParam(), Corpus[6].Expect,
                  /*ExpectCaptures=*/1, /*ExpectResumes=*/1);
}

TEST_P(EffPinProtocol, AbortedContinuationStillUnpinsAtJoin) {
  // The continuation is captured inside a par branch and *dropped* (the
  // arm answers without resuming): the capture pins must then be released
  // by the ordinary join rule, not leak.
  runAndCheckPins(
      "effect Abort\n"
      "fun task u = handle 1 + perform Abort 0 with | Abort x k => 42 end\n"
      "val p = par (task (), task ())\n"
      "printInt (fst p + snd p)",
      GetParam(), "84\n",
      /*ExpectCaptures=*/2, /*ExpectResumes=*/0);
}

INSTANTIATE_TEST_SUITE_P(Workers, EffPinProtocol, ::testing::Values(1, 3),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return "Workers" + std::to_string(I.param);
                         });

TEST(EffPinProtocol, CaptureAttributionMatchesPinnedBytes) {
  // The only pins this program can take are capture pins (no refs or
  // arrays are shared across strands), so the em.cont.capture profile
  // site must account for *all* pinned bytes, and the join must release
  // exactly that many.
  em::Counts.reset();
  obs::Profiler &Prof = obs::Profiler::get();
  Prof.reset();
  Prof.enable();
  EvalResult R;
  {
    rt::Config Cfg;
    Cfg.NumWorkers = 2;
    Cfg.GcMinBytes = 1 << 16;
    rt::Runtime Rt(Cfg);
    Rt.run([&] {
      std::vector<std::string> Errs;
      R.Ok = evalSource(Corpus[7].Src, R.Output, R.Value, R.Type, Errs);
      if (!Errs.empty())
        R.Error = Errs[0];
    });
  }
  ASSERT_TRUE(R.Ok) << R.Error;
  em::CounterSnapshot S = em::Counts.snapshot();
  std::vector<obs::ProfileSiteSnap> Sites = Prof.snapshot();
  Prof.disable();
  int64_t SiteBytes = 0, SiteEvents = 0;
  for (const obs::ProfileSiteSnap &Snap : Sites)
    if (Snap.Name == "em.cont.capture") {
      SiteBytes += Snap.Bytes;
      SiteEvents += Snap.Events;
    }
  EXPECT_EQ(SiteEvents, S.PinnedObjects)
      << "every pin of this program is a capture pin";
  EXPECT_EQ(SiteBytes, S.PinnedBytes)
      << "capture-site attribution must sum to the pinned bytes";
  EXPECT_EQ(S.livePinnedBytes(), 0) << "all capture pins released";
  EXPECT_EQ(Prof.livePinCount(), 0) << "profiler lifetime table drained";
}

//===----------------------------------------------------------------------===//
// Differential: Manage / Detect / Off agree on every effectful program
//===----------------------------------------------------------------------===//

TEST_P(EffDifferential, ModesAgreeOnOutput) {
  const EffProgram &P = GetParam();
  EvalResult Manage = evalP(P.Src, P.Workers, em::Mode::Manage);
  EvalResult Detect = evalP(P.Src, P.Workers, em::Mode::Detect);
  EvalResult Off = evalP(P.Src, P.Workers, em::Mode::Off);
  ASSERT_TRUE(Manage.Ok) << P.Name << ": " << Manage.Error;
  ASSERT_TRUE(Detect.Ok) << P.Name
                         << ": handler programs re-establish heap ancestry "
                            "on resume, so Detect must accept them: "
                         << Detect.Error;
  ASSERT_TRUE(Off.Ok) << P.Name << ": " << Off.Error;
  EXPECT_EQ(Manage.Output, P.Expect) << P.Name;
  EXPECT_EQ(Detect.Output, Manage.Output) << P.Name;
  EXPECT_EQ(Off.Output, Manage.Output) << P.Name;
  EXPECT_EQ(Detect.Value, Manage.Value) << P.Name;
  EXPECT_EQ(Off.Value, Manage.Value) << P.Name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, EffDifferential, ::testing::ValuesIn(Corpus),
                         [](const ::testing::TestParamInfo<EffProgram> &I) {
                           return I.param.Name;
                         });
