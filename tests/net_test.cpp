//===- tests/net_test.cpp - Wire protocol and request server --------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Codec tests (varints, framing, message round-trips, malformed input —
/// all pure, no sockets) and end-to-end request-server tests: OK
/// responses, admission shedding, deadline expiry with zero leaked pins,
/// graceful drain, and seed-replayable wire chaos.
///
//===----------------------------------------------------------------------===//

#include "chaos/ChaosSchedule.h"
#include "mm/Chunk.h"
#include "mm/MemoryGovernor.h"
#include "net/Client.h"
#include "net/Frame.h"
#include "net/Server.h"
#include "obs/Exposition.h"
#include "obs/Profile.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace mpl;
using namespace mpl::net;

namespace {

std::vector<uint8_t> bytes(std::initializer_list<int> L) {
  std::vector<uint8_t> V;
  for (int B : L)
    V.push_back(static_cast<uint8_t>(B));
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Varints
//===----------------------------------------------------------------------===//

TEST(VarintTest, RoundTrip32) {
  for (uint64_t V : {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                     0xffffffffull}) {
    std::string S;
    putVarint(S, V);
    uint32_t Out = 0;
    size_t Used = 0;
    ASSERT_EQ(getVarint(reinterpret_cast<const uint8_t *>(S.data()), S.size(),
                        Out, Used),
              DecodeStatus::Ok)
        << V;
    EXPECT_EQ(Out, V);
    EXPECT_EQ(Used, S.size());
  }
}

TEST(VarintTest, RoundTrip64) {
  for (uint64_t V :
       {0ull, 1ull, 0xffffffffull, 0x100000000ull, ~0ull >> 1, ~0ull}) {
    std::string S;
    putVarint(S, V);
    uint64_t Out = 0;
    size_t Used = 0;
    ASSERT_EQ(getVarint64(reinterpret_cast<const uint8_t *>(S.data()),
                          S.size(), Out, Used),
              DecodeStatus::Ok);
    EXPECT_EQ(Out, V);
    EXPECT_EQ(Used, S.size());
  }
}

TEST(VarintTest, TruncatedIsNeedMore) {
  // 0x80 = "value continues" with no next byte.
  auto B = bytes({0x80});
  uint32_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint(B.data(), B.size(), V, Used), DecodeStatus::NeedMore);
}

TEST(VarintTest, FiveContinuationBytesIsMalformedFor32) {
  auto B = bytes({0x80, 0x80, 0x80, 0x80, 0x80, 0x01});
  uint32_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint(B.data(), B.size(), V, Used), DecodeStatus::Malformed);
}

TEST(VarintTest, Overflow32IsMalformed) {
  // 2^32 encodes in 5 bytes but exceeds uint32.
  std::string S;
  putVarint(S, 0x100000000ull);
  uint32_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint(reinterpret_cast<const uint8_t *>(S.data()), S.size(),
                      V, Used),
            DecodeStatus::Malformed);
}

TEST(VarintTest, NonCanonicalTrailingZeroIsMalformed) {
  // "0x80 0x00" is a 2-byte encoding of 0; only "0x00" is canonical.
  auto B = bytes({0x80, 0x00});
  uint32_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint(B.data(), B.size(), V, Used), DecodeStatus::Malformed);
}

TEST(VarintTest, Overflow64IsMalformed) {
  // Eleven continuation bytes: shift past 64 bits.
  auto B = bytes({0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                  0x01});
  uint64_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint64(B.data(), B.size(), V, Used), DecodeStatus::Malformed);
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

TEST(FrameTest, RoundTripIncrementalFeed) {
  std::string P1(1000, 'a'), P2 = "x";
  std::string Wire = encodeFrame(P1) + encodeFrame(P2);
  FrameReader R;
  std::string Out;
  // Byte-at-a-time: NeedMore until each frame completes.
  std::vector<std::string> Got;
  for (char C : Wire) {
    R.feed(&C, 1);
    while (R.next(Out) == DecodeStatus::Ok)
      Got.push_back(Out);
  }
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0], P1);
  EXPECT_EQ(Got[1], P2);
  EXPECT_EQ(R.pendingBytes(), 0u);
}

TEST(FrameTest, OversizedLengthIsRejectedAndSticky) {
  std::string Wire;
  putVarint(Wire, MaxFrameBytes + 1);
  FrameReader R;
  R.feed(Wire.data(), Wire.size());
  std::string Out;
  EXPECT_EQ(R.next(Out), DecodeStatus::Oversized);
  // Sticky: more (even valid) bytes cannot resurrect the stream.
  std::string Valid = encodeFrame("ok");
  R.feed(Valid.data(), Valid.size());
  EXPECT_EQ(R.next(Out), DecodeStatus::Oversized);
}

TEST(FrameTest, MalformedLengthVarintIsSticky) {
  auto B = bytes({0x80, 0x80, 0x80, 0x80, 0x80, 0x01});
  FrameReader R;
  R.feed(B.data(), B.size());
  std::string Out;
  EXPECT_EQ(R.next(Out), DecodeStatus::Malformed);
  EXPECT_EQ(R.next(Out), DecodeStatus::Malformed);
}

TEST(FrameTest, TruncatedFrameStaysNeedMore) {
  std::string Wire = encodeFrame(std::string(100, 'z'));
  FrameReader R;
  R.feed(Wire.data(), Wire.size() - 1); // one byte short
  std::string Out;
  EXPECT_EQ(R.next(Out), DecodeStatus::NeedMore);
  R.feed(Wire.data() + Wire.size() - 1, 1);
  EXPECT_EQ(R.next(Out), DecodeStatus::Ok);
  EXPECT_EQ(Out.size(), 100u);
}

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

TEST(MessageTest, RequestRoundTrip) {
  Request R;
  R.Id = 0x1234567890abcdefull;
  R.Kind = RequestKind::Workload;
  R.DeadlineMs = 2500;
  R.Body = "fib 30";
  Request Out;
  ASSERT_EQ(decodeRequest(encodeRequest(R), Out), DecodeStatus::Ok);
  EXPECT_EQ(Out.Id, R.Id);
  EXPECT_EQ(Out.Kind, R.Kind);
  EXPECT_EQ(Out.DeadlineMs, R.DeadlineMs);
  EXPECT_EQ(Out.Body, R.Body);
}

TEST(MessageTest, ResponseRoundTrip) {
  Response R;
  R.Id = 42;
  R.St = Status::Shed;
  R.RetryAfterMs = 200;
  R.Body = "pressure=hard queue=8/8";
  Response Out;
  ASSERT_EQ(decodeResponse(encodeResponse(R), Out), DecodeStatus::Ok);
  EXPECT_EQ(Out.Id, R.Id);
  EXPECT_EQ(Out.St, R.St);
  EXPECT_EQ(Out.RetryAfterMs, R.RetryAfterMs);
  EXPECT_EQ(Out.Body, R.Body);
}

TEST(MessageTest, MalformedMessagesRejected) {
  Request R;
  EXPECT_EQ(decodeRequest("", R), DecodeStatus::Malformed);
  EXPECT_EQ(decodeRequest("X", R), DecodeStatus::Malformed); // bad tag
  std::string Good = encodeRequest(Request{});
  // Truncated payload (drop last byte of a complete message).
  EXPECT_EQ(decodeRequest(Good.substr(0, Good.size() - 1), R),
            DecodeStatus::Malformed);
  // Trailing garbage after a complete message.
  EXPECT_EQ(decodeRequest(Good + "!", R), DecodeStatus::Malformed);
  // Out-of-range kind byte.
  std::string BadKind = Good;
  BadKind[2] = 9; // 'Q' varint(0) <kind> ...
  EXPECT_EQ(decodeRequest(BadKind, R), DecodeStatus::Malformed);
  Response S;
  EXPECT_EQ(decodeResponse("", S), DecodeStatus::Malformed);
  EXPECT_EQ(decodeResponse("Q", S), DecodeStatus::Malformed); // wrong tag
}

//===----------------------------------------------------------------------===//
// End-to-end server
//===----------------------------------------------------------------------===//

namespace {

/// Starts a server, runs \p Fn with it, drains, and returns totals.
template <typename Fn>
ServerTotals withServer(ServerConfig SC, Fn &&Body) {
  Server Srv(SC);
  EXPECT_TRUE(Srv.start());
  Body(Srv);
  Srv.waitUntilDrained();
  return Srv.totals();
}

} // namespace

TEST(ServerTest, OkResponsesForMixedKinds) {
  ServerConfig SC;
  SC.NumWorkers = 2;
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    Request R;
    R.Id = 1;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 20";
    Response Resp;
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.Id, 1u);
    EXPECT_EQ(Resp.St, Status::Ok);
    EXPECT_EQ(Resp.Body, "6765");

    R.Id = 2;
    R.Kind = RequestKind::Pml;
    R.Body = "1 + 2 * 3";
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
    EXPECT_EQ(Resp.Body, "7 : int");

    R.Id = 3;
    R.Kind = RequestKind::Ping;
    R.Body.clear();
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
    EXPECT_EQ(Resp.Body, "pong");

    R.Id = 4;
    R.Kind = RequestKind::Workload;
    R.Body = "nosuchkernel 1";
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Error);
  });
  EXPECT_EQ(T.Requests, 4);
  EXPECT_EQ(T.Ok, 3);
  EXPECT_EQ(T.Errors, 1);
}

TEST(ServerTest, ZeroCapacityQueueShedsWithRetryHint) {
  ServerConfig SC;
  SC.QueueCap = 0; // the admission ladder can never admit
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    Request R;
    R.Id = 7;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 10";
    Response Resp;
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Shed);
    EXPECT_GT(Resp.RetryAfterMs, 0u);
    EXPECT_NE(Resp.Body.find("pressure="), std::string::npos);
  });
  EXPECT_EQ(T.Shed, 1);
  EXPECT_EQ(T.Ok, 0);
}

TEST(ServerTest, DeadlineExpiresMidRunAndReleasesPins) {
  obs::Profiler::get().enable();
  ServerConfig SC;
  SC.NumWorkers = 2;
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    Request R;
    R.Id = 9;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 45"; // minutes of work; must be cut off in ~20ms
    R.DeadlineMs = 20;
    Response Resp;
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::DeadlineExpired);
    EXPECT_NE(Resp.Body.find("overrun"), std::string::npos);
  });
  EXPECT_EQ(T.DeadlineExpired, 1);
  // The aborted task's heaps joined; the join unpin rule released its pins.
  EXPECT_EQ(obs::Profiler::get().livePinCount(), 0);
}

TEST(ServerTest, DrainRefusesNewWorkThenStops) {
  ServerConfig SC;
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    Request R;
    R.Id = 11;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 15";
    Response Resp;
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
    Srv.requestDrain();
    // Same (still-open) connection: a request decoded during drain gets a
    // structured DRAINING response before the connection closes.
    R.Id = 12;
    if (C.call(R, Resp))
      EXPECT_EQ(Resp.St, Status::Draining);
  });
  EXPECT_EQ(T.Ok, 1);
}

TEST(ServerTest, WireChaosIsReplayableBySeed) {
  // Deterministic every-Nth wire fault on the server's (single) connection
  // thread: two identical runs must observe identical fault totals, and
  // the client must survive every injection via reconnect + retry.
  auto RunOnce = [](int64_t &WireFaults, int64_t &Delivered) {
    chaos::Config CC;
    CC.Seed = 42;
    CC.WireFault = chaos::Fault::WireDrop;
    CC.WireFaultEveryN = 5;
    chaos::enable(CC);
    ServerConfig SC;
    Delivered = 0;
    ServerTotals T = withServer(SC, [&](Server &Srv) {
      Client C;
      RetryPolicy P;
      P.MaxAttempts = 10;
      for (int I = 0; I < 20; ++I) {
        Request R;
        R.Id = static_cast<uint64_t>(I) + 1;
        R.Kind = RequestKind::Workload;
        R.Body = "fib 12";
        CallResult CR = callWithRetry(C, Srv.port(), R, P);
        if (CR.Delivered && CR.St == Status::Ok)
          ++Delivered;
      }
    });
    WireFaults = T.WireFaults;
    chaos::disable();
  };
  int64_t F1 = 0, D1 = 0, F2 = 0, D2 = 0;
  RunOnce(F1, D1);
  RunOnce(F2, D2);
  EXPECT_GT(F1, 0);
  EXPECT_EQ(F1, F2) << "same seed, same wire-fault schedule";
  EXPECT_EQ(D1, 20);
  EXPECT_EQ(D2, 20);
}

//===----------------------------------------------------------------------===//
// Introspection plane ('I' stats frames, DESIGN.md §16)
//===----------------------------------------------------------------------===//

TEST(IntrospectTest, CodecRoundTrip) {
  Introspect Q;
  Q.Id = 0xfeedfacecafeull;
  Q.Options = "format=prom";
  Introspect Out;
  ASSERT_EQ(decodeIntrospect(encodeIntrospect(Q), Out), DecodeStatus::Ok);
  EXPECT_EQ(Out.Id, Q.Id);
  EXPECT_EQ(Out.Options, Q.Options);
  Q.Options.clear(); // the common no-options frame
  ASSERT_EQ(decodeIntrospect(encodeIntrospect(Q), Out), DecodeStatus::Ok);
  EXPECT_EQ(Out.Id, Q.Id);
  EXPECT_TRUE(Out.Options.empty());
}

TEST(IntrospectTest, MalformedRejected) {
  Introspect Out;
  EXPECT_EQ(decodeIntrospect("", Out), DecodeStatus::Malformed);
  EXPECT_EQ(decodeIntrospect("Q", Out), DecodeStatus::Malformed); // bad tag
  Introspect Q;
  Q.Id = 1;
  Q.Options = "x";
  std::string Good = encodeIntrospect(Q);
  // Truncated payload and trailing garbage.
  EXPECT_EQ(decodeIntrospect(Good.substr(0, Good.size() - 1), Out),
            DecodeStatus::Malformed);
  EXPECT_EQ(decodeIntrospect(Good + "!", Out), DecodeStatus::Malformed);
}

namespace {

/// Fetches one mpl-stats/1 frame over \p C and parses it; \p Stats points
/// into \p Doc on success.
bool fetchStats(Client &C, json::Value &Doc, const json::Value *&Stats) {
  Response Resp;
  if (!C.introspect("", Resp) || Resp.St != Status::Ok)
    return false;
  std::string Err;
  if (!json::parse(Resp.Body, Doc, Err))
    return false;
  Stats = Doc.field("mpl-stats/1");
  return Stats != nullptr;
}

double statNum(const json::Value &V, const char *Name) {
  const json::Value *F = V.field(Name);
  return F && F->isNumber() ? F->NumV : -1;
}

std::string statStr(const json::Value &V, const char *Name) {
  const json::Value *F = V.field(Name);
  return F && F->isString() ? F->StrV : "";
}

} // namespace

TEST(ServerStatsTest, StatsFrameDuringLoadKeepsBalance) {
  ServerConfig SC;
  SC.NumWorkers = 2;
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    Response Resp;
    for (int I = 0; I < 6; ++I) {
      Request R;
      R.Id = static_cast<uint64_t>(I) + 1;
      R.Kind = RequestKind::Workload;
      R.Body = "fib 15";
      ASSERT_TRUE(C.call(R, Resp));
      EXPECT_EQ(Resp.St, Status::Ok);
    }
    json::Value Doc;
    const json::Value *S = nullptr;
    ASSERT_TRUE(fetchStats(C, Doc, S));
    EXPECT_EQ(statStr(*S, "status"), "serving");
    EXPECT_GE(statNum(*S, "queue_cap"), 1);
    EXPECT_GE(statNum(*S, "queue_depth"), 0);

    const json::Value *Ctr = S->field("counters");
    ASSERT_NE(Ctr, nullptr);
    EXPECT_EQ(statNum(*Ctr, "net.requests"), 6);
    // The balance invariant the stats frame must never perturb: every
    // decoded request got exactly one counted response, and the one 'I'
    // frame answered so far is outside the balance.
    double Sum = statNum(*Ctr, "net.resp.ok") +
                 statNum(*Ctr, "net.resp.shed") +
                 statNum(*Ctr, "net.resp.deadline_expired") +
                 statNum(*Ctr, "net.resp.error") +
                 statNum(*Ctr, "net.resp.draining");
    EXPECT_EQ(Sum, 6);
    EXPECT_EQ(statNum(*Ctr, "net.introspect"), 1);

    // Stage decomposition saw every executed request. The reply stage is
    // recorded on the connection thread right after each response hit the
    // wire, strictly before this introspect was processed on that same
    // thread — so all six are visible.
    const json::Value *Lat = S->field("latency");
    ASSERT_NE(Lat, nullptr);
    EXPECT_EQ(statNum(*Lat, "count"), 6);
    const json::Value *Stage = S->field("stage");
    ASSERT_NE(Stage, nullptr);
    const json::Value *StQ = Stage->field("queue");
    const json::Value *StE = Stage->field("exec");
    const json::Value *StR = Stage->field("reply");
    ASSERT_TRUE(StQ && StE && StR);
    EXPECT_EQ(statNum(*StQ, "count"), 6);
    EXPECT_EQ(statNum(*StE, "count"), 6);
    EXPECT_EQ(statNum(*StR, "count"), 6);
    EXPECT_GE(statNum(*StE, "p50"), 0);

    const json::Value *W = S->field("window");
    ASSERT_NE(W, nullptr);
    EXPECT_GT(statNum(*W, "window_ns"), 0);
    EXPECT_NE(S->field("em"), nullptr);
    EXPECT_NE(S->field("mm"), nullptr);

    // Tail exemplars: capped at the K worst, sorted worst-first.
    const json::Value *Ex = S->field("exemplars");
    ASSERT_TRUE(Ex && Ex->isArray());
    EXPECT_GE(Ex->Items.size(), 1u);
    EXPECT_LE(Ex->Items.size(), 4u);
    double PrevTotal = -1;
    for (const json::Value &E : Ex->Items) {
      double Tot = statNum(E, "total_ns");
      EXPECT_GE(Tot, 0);
      if (PrevTotal >= 0) {
        EXPECT_LE(Tot, PrevTotal);
      }
      PrevTotal = Tot;
    }
  });
  EXPECT_EQ(T.Requests, 6);
  EXPECT_EQ(T.Ok, 6);
  EXPECT_EQ(T.Introspects, 1);
}

TEST(ServerStatsTest, PrometheusFormatPassesChecker) {
  ServerConfig SC;
  withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    // Some traffic first so histograms and counters are non-trivial.
    Request R;
    R.Id = 1;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 12";
    Response Resp;
    ASSERT_TRUE(C.call(R, Resp));
    ASSERT_TRUE(C.introspect("format=prom", Resp));
    ASSERT_EQ(Resp.St, Status::Ok);
    EXPECT_NE(Resp.Body.find("# TYPE"), std::string::npos);
    EXPECT_NE(Resp.Body.find("mpl_net_requests_total"), std::string::npos);
    std::string Err;
    int Series = 0;
    EXPECT_TRUE(obs::checkExposition(Resp.Body, Err, &Series)) << Err;
    EXPECT_GT(Series, 10);
  });
}

TEST(ServerStatsTest, StatsAnswerUnderCriticalPressure) {
  ServerConfig SC;
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    // Force Critical the way production reaches it: residency over a hard
    // limit (held chunk + 1-byte limit → Hard on reconfigure), then an
    // exhausted recovery ladder (raiseOom → Critical). adviseAdmission's
    // own pressure refresh keeps Critical while residency stays over the
    // limit.
    MemoryGovernor &MG = MemoryGovernor::get();
    MemoryGovernor::Config Old = MG.config();
    Chunk *Held = ChunkPool::get().acquire(); // under the old (unlimited) cfg
    MemoryGovernor::Config Tiny = Old;
    Tiny.LimitBytes = 1;
    MG.configure(Tiny);
    try {
      MG.raiseOom(64);
    } catch (const OutOfMemoryError &) {
    }
    EXPECT_EQ(MG.pressure(), Pressure::Critical);

    // Work is shed at the door (Critical admits nothing)...
    Request R;
    R.Id = 1;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 10";
    Response Resp;
    if (C.call(R, Resp)) {
      EXPECT_EQ(Resp.St, Status::Shed);
    }
    // ...but the introspection plane still answers, and says why.
    json::Value Doc;
    const json::Value *S = nullptr;
    if (fetchStats(C, Doc, S)) {
      EXPECT_EQ(statStr(*S, "status"), "serving");
      EXPECT_EQ(statStr(*S, "pressure"), "critical");
    } else {
      ADD_FAILURE() << "stats frame failed under Critical pressure";
    }

    ChunkPool::get().release(Held);
    MG.configure(Old); // restore before drain so the executor exits clean
    EXPECT_EQ(MG.pressure(), Pressure::None);
  });
  EXPECT_EQ(T.Shed, 1);
  EXPECT_EQ(T.Introspects, 1);
}

TEST(ServerStatsTest, StatsDuringDrainReportDraining) {
  ServerConfig SC;
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    json::Value Doc1;
    const json::Value *S1 = nullptr;
    ASSERT_TRUE(fetchStats(C, Doc1, S1));
    EXPECT_EQ(statStr(*S1, "status"), "serving");
    // Answering the frame above restarted the connection's ~100ms recv
    // window, so a stats frame sent immediately after the drain flag flips
    // is decoded and answered before the idle-tick close.
    Srv.requestDrain();
    json::Value Doc2;
    const json::Value *S2 = nullptr;
    ASSERT_TRUE(fetchStats(C, Doc2, S2));
    EXPECT_EQ(statStr(*S2, "status"), "draining");
  });
  EXPECT_EQ(T.Introspects, 2);
}

TEST(ServerTest, BackoffHonorsServerHint) {
  RetryPolicy P;
  P.BaseBackoffMs = 10;
  P.MaxBackoffMs = 100;
  // The server hint is a floor: with a 200ms hint every backoff is >= 200.
  for (int A = 1; A <= 4; ++A)
    EXPECT_GE(P.backoffMs(A, 200), 200);
  // Without a hint, backoff is capped and positive.
  for (int A = 1; A <= 8; ++A) {
    int64_t W = P.backoffMs(A, 0);
    EXPECT_GE(W, 1);
    EXPECT_LE(W, P.MaxBackoffMs);
  }
}
