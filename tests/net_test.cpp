//===- tests/net_test.cpp - Wire protocol and request server --------------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Codec tests (varints, framing, message round-trips, malformed input —
/// all pure, no sockets) and end-to-end request-server tests: OK
/// responses, admission shedding, deadline expiry with zero leaked pins,
/// graceful drain, and seed-replayable wire chaos.
///
//===----------------------------------------------------------------------===//

#include "chaos/ChaosSchedule.h"
#include "net/Client.h"
#include "net/Frame.h"
#include "net/Server.h"
#include "obs/Profile.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace mpl;
using namespace mpl::net;

namespace {

std::vector<uint8_t> bytes(std::initializer_list<int> L) {
  std::vector<uint8_t> V;
  for (int B : L)
    V.push_back(static_cast<uint8_t>(B));
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Varints
//===----------------------------------------------------------------------===//

TEST(VarintTest, RoundTrip32) {
  for (uint64_t V : {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                     0xffffffffull}) {
    std::string S;
    putVarint(S, V);
    uint32_t Out = 0;
    size_t Used = 0;
    ASSERT_EQ(getVarint(reinterpret_cast<const uint8_t *>(S.data()), S.size(),
                        Out, Used),
              DecodeStatus::Ok)
        << V;
    EXPECT_EQ(Out, V);
    EXPECT_EQ(Used, S.size());
  }
}

TEST(VarintTest, RoundTrip64) {
  for (uint64_t V :
       {0ull, 1ull, 0xffffffffull, 0x100000000ull, ~0ull >> 1, ~0ull}) {
    std::string S;
    putVarint(S, V);
    uint64_t Out = 0;
    size_t Used = 0;
    ASSERT_EQ(getVarint64(reinterpret_cast<const uint8_t *>(S.data()),
                          S.size(), Out, Used),
              DecodeStatus::Ok);
    EXPECT_EQ(Out, V);
    EXPECT_EQ(Used, S.size());
  }
}

TEST(VarintTest, TruncatedIsNeedMore) {
  // 0x80 = "value continues" with no next byte.
  auto B = bytes({0x80});
  uint32_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint(B.data(), B.size(), V, Used), DecodeStatus::NeedMore);
}

TEST(VarintTest, FiveContinuationBytesIsMalformedFor32) {
  auto B = bytes({0x80, 0x80, 0x80, 0x80, 0x80, 0x01});
  uint32_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint(B.data(), B.size(), V, Used), DecodeStatus::Malformed);
}

TEST(VarintTest, Overflow32IsMalformed) {
  // 2^32 encodes in 5 bytes but exceeds uint32.
  std::string S;
  putVarint(S, 0x100000000ull);
  uint32_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint(reinterpret_cast<const uint8_t *>(S.data()), S.size(),
                      V, Used),
            DecodeStatus::Malformed);
}

TEST(VarintTest, NonCanonicalTrailingZeroIsMalformed) {
  // "0x80 0x00" is a 2-byte encoding of 0; only "0x00" is canonical.
  auto B = bytes({0x80, 0x00});
  uint32_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint(B.data(), B.size(), V, Used), DecodeStatus::Malformed);
}

TEST(VarintTest, Overflow64IsMalformed) {
  // Eleven continuation bytes: shift past 64 bits.
  auto B = bytes({0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                  0x01});
  uint64_t V = 0;
  size_t Used = 0;
  EXPECT_EQ(getVarint64(B.data(), B.size(), V, Used), DecodeStatus::Malformed);
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

TEST(FrameTest, RoundTripIncrementalFeed) {
  std::string P1(1000, 'a'), P2 = "x";
  std::string Wire = encodeFrame(P1) + encodeFrame(P2);
  FrameReader R;
  std::string Out;
  // Byte-at-a-time: NeedMore until each frame completes.
  std::vector<std::string> Got;
  for (char C : Wire) {
    R.feed(&C, 1);
    while (R.next(Out) == DecodeStatus::Ok)
      Got.push_back(Out);
  }
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0], P1);
  EXPECT_EQ(Got[1], P2);
  EXPECT_EQ(R.pendingBytes(), 0u);
}

TEST(FrameTest, OversizedLengthIsRejectedAndSticky) {
  std::string Wire;
  putVarint(Wire, MaxFrameBytes + 1);
  FrameReader R;
  R.feed(Wire.data(), Wire.size());
  std::string Out;
  EXPECT_EQ(R.next(Out), DecodeStatus::Oversized);
  // Sticky: more (even valid) bytes cannot resurrect the stream.
  std::string Valid = encodeFrame("ok");
  R.feed(Valid.data(), Valid.size());
  EXPECT_EQ(R.next(Out), DecodeStatus::Oversized);
}

TEST(FrameTest, MalformedLengthVarintIsSticky) {
  auto B = bytes({0x80, 0x80, 0x80, 0x80, 0x80, 0x01});
  FrameReader R;
  R.feed(B.data(), B.size());
  std::string Out;
  EXPECT_EQ(R.next(Out), DecodeStatus::Malformed);
  EXPECT_EQ(R.next(Out), DecodeStatus::Malformed);
}

TEST(FrameTest, TruncatedFrameStaysNeedMore) {
  std::string Wire = encodeFrame(std::string(100, 'z'));
  FrameReader R;
  R.feed(Wire.data(), Wire.size() - 1); // one byte short
  std::string Out;
  EXPECT_EQ(R.next(Out), DecodeStatus::NeedMore);
  R.feed(Wire.data() + Wire.size() - 1, 1);
  EXPECT_EQ(R.next(Out), DecodeStatus::Ok);
  EXPECT_EQ(Out.size(), 100u);
}

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

TEST(MessageTest, RequestRoundTrip) {
  Request R;
  R.Id = 0x1234567890abcdefull;
  R.Kind = RequestKind::Workload;
  R.DeadlineMs = 2500;
  R.Body = "fib 30";
  Request Out;
  ASSERT_EQ(decodeRequest(encodeRequest(R), Out), DecodeStatus::Ok);
  EXPECT_EQ(Out.Id, R.Id);
  EXPECT_EQ(Out.Kind, R.Kind);
  EXPECT_EQ(Out.DeadlineMs, R.DeadlineMs);
  EXPECT_EQ(Out.Body, R.Body);
}

TEST(MessageTest, ResponseRoundTrip) {
  Response R;
  R.Id = 42;
  R.St = Status::Shed;
  R.RetryAfterMs = 200;
  R.Body = "pressure=hard queue=8/8";
  Response Out;
  ASSERT_EQ(decodeResponse(encodeResponse(R), Out), DecodeStatus::Ok);
  EXPECT_EQ(Out.Id, R.Id);
  EXPECT_EQ(Out.St, R.St);
  EXPECT_EQ(Out.RetryAfterMs, R.RetryAfterMs);
  EXPECT_EQ(Out.Body, R.Body);
}

TEST(MessageTest, MalformedMessagesRejected) {
  Request R;
  EXPECT_EQ(decodeRequest("", R), DecodeStatus::Malformed);
  EXPECT_EQ(decodeRequest("X", R), DecodeStatus::Malformed); // bad tag
  std::string Good = encodeRequest(Request{});
  // Truncated payload (drop last byte of a complete message).
  EXPECT_EQ(decodeRequest(Good.substr(0, Good.size() - 1), R),
            DecodeStatus::Malformed);
  // Trailing garbage after a complete message.
  EXPECT_EQ(decodeRequest(Good + "!", R), DecodeStatus::Malformed);
  // Out-of-range kind byte.
  std::string BadKind = Good;
  BadKind[2] = 9; // 'Q' varint(0) <kind> ...
  EXPECT_EQ(decodeRequest(BadKind, R), DecodeStatus::Malformed);
  Response S;
  EXPECT_EQ(decodeResponse("", S), DecodeStatus::Malformed);
  EXPECT_EQ(decodeResponse("Q", S), DecodeStatus::Malformed); // wrong tag
}

//===----------------------------------------------------------------------===//
// End-to-end server
//===----------------------------------------------------------------------===//

namespace {

/// Starts a server, runs \p Fn with it, drains, and returns totals.
template <typename Fn>
ServerTotals withServer(ServerConfig SC, Fn &&Body) {
  Server Srv(SC);
  EXPECT_TRUE(Srv.start());
  Body(Srv);
  Srv.waitUntilDrained();
  return Srv.totals();
}

} // namespace

TEST(ServerTest, OkResponsesForMixedKinds) {
  ServerConfig SC;
  SC.NumWorkers = 2;
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    Request R;
    R.Id = 1;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 20";
    Response Resp;
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.Id, 1u);
    EXPECT_EQ(Resp.St, Status::Ok);
    EXPECT_EQ(Resp.Body, "6765");

    R.Id = 2;
    R.Kind = RequestKind::Pml;
    R.Body = "1 + 2 * 3";
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
    EXPECT_EQ(Resp.Body, "7 : int");

    R.Id = 3;
    R.Kind = RequestKind::Ping;
    R.Body.clear();
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
    EXPECT_EQ(Resp.Body, "pong");

    R.Id = 4;
    R.Kind = RequestKind::Workload;
    R.Body = "nosuchkernel 1";
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Error);
  });
  EXPECT_EQ(T.Requests, 4);
  EXPECT_EQ(T.Ok, 3);
  EXPECT_EQ(T.Errors, 1);
}

TEST(ServerTest, ZeroCapacityQueueShedsWithRetryHint) {
  ServerConfig SC;
  SC.QueueCap = 0; // the admission ladder can never admit
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    Request R;
    R.Id = 7;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 10";
    Response Resp;
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Shed);
    EXPECT_GT(Resp.RetryAfterMs, 0u);
    EXPECT_NE(Resp.Body.find("pressure="), std::string::npos);
  });
  EXPECT_EQ(T.Shed, 1);
  EXPECT_EQ(T.Ok, 0);
}

TEST(ServerTest, DeadlineExpiresMidRunAndReleasesPins) {
  obs::Profiler::get().enable();
  ServerConfig SC;
  SC.NumWorkers = 2;
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    Request R;
    R.Id = 9;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 45"; // minutes of work; must be cut off in ~20ms
    R.DeadlineMs = 20;
    Response Resp;
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::DeadlineExpired);
    EXPECT_NE(Resp.Body.find("overrun"), std::string::npos);
  });
  EXPECT_EQ(T.DeadlineExpired, 1);
  // The aborted task's heaps joined; the join unpin rule released its pins.
  EXPECT_EQ(obs::Profiler::get().livePinCount(), 0);
}

TEST(ServerTest, DrainRefusesNewWorkThenStops) {
  ServerConfig SC;
  ServerTotals T = withServer(SC, [&](Server &Srv) {
    Client C;
    ASSERT_TRUE(C.connect(Srv.port()));
    Request R;
    R.Id = 11;
    R.Kind = RequestKind::Workload;
    R.Body = "fib 15";
    Response Resp;
    ASSERT_TRUE(C.call(R, Resp));
    EXPECT_EQ(Resp.St, Status::Ok);
    Srv.requestDrain();
    // Same (still-open) connection: a request decoded during drain gets a
    // structured DRAINING response before the connection closes.
    R.Id = 12;
    if (C.call(R, Resp))
      EXPECT_EQ(Resp.St, Status::Draining);
  });
  EXPECT_EQ(T.Ok, 1);
}

TEST(ServerTest, WireChaosIsReplayableBySeed) {
  // Deterministic every-Nth wire fault on the server's (single) connection
  // thread: two identical runs must observe identical fault totals, and
  // the client must survive every injection via reconnect + retry.
  auto RunOnce = [](int64_t &WireFaults, int64_t &Delivered) {
    chaos::Config CC;
    CC.Seed = 42;
    CC.WireFault = chaos::Fault::WireDrop;
    CC.WireFaultEveryN = 5;
    chaos::enable(CC);
    ServerConfig SC;
    Delivered = 0;
    ServerTotals T = withServer(SC, [&](Server &Srv) {
      Client C;
      RetryPolicy P;
      P.MaxAttempts = 10;
      for (int I = 0; I < 20; ++I) {
        Request R;
        R.Id = static_cast<uint64_t>(I) + 1;
        R.Kind = RequestKind::Workload;
        R.Body = "fib 12";
        CallResult CR = callWithRetry(C, Srv.port(), R, P);
        if (CR.Delivered && CR.St == Status::Ok)
          ++Delivered;
      }
    });
    WireFaults = T.WireFaults;
    chaos::disable();
  };
  int64_t F1 = 0, D1 = 0, F2 = 0, D2 = 0;
  RunOnce(F1, D1);
  RunOnce(F2, D2);
  EXPECT_GT(F1, 0);
  EXPECT_EQ(F1, F2) << "same seed, same wire-fault schedule";
  EXPECT_EQ(D1, 20);
  EXPECT_EQ(D2, 20);
}

TEST(ServerTest, BackoffHonorsServerHint) {
  RetryPolicy P;
  P.BaseBackoffMs = 10;
  P.MaxBackoffMs = 100;
  // The server hint is a floor: with a 200ms hint every backoff is >= 200.
  for (int A = 1; A <= 4; ++A)
    EXPECT_GE(P.backoffMs(A, 200), 200);
  // Without a hint, backoff is capped and positive.
  for (int A = 1; A <= 8; ++A) {
    int64_t W = P.backoffMs(A, 0);
    EXPECT_GE(W, 1);
    EXPECT_LE(W, P.MaxBackoffMs);
  }
}
