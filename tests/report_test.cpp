//===- tests/report_test.cpp - Statistical regression-gate tests ----------===//
//
// Part of mpl-em (PLDI 2023 reproduction).
//
// Unit tests for the extracted gate library (tools/GateLib.h) that backs
// the CI perf-smoke stage, driven with synthetic mpl-bench/1 fixtures:
// stddev-aware pass/fail with noise classes, floor behaviour, missing
// rows, leaked pins, checksum mismatches (same- and cross-scale),
// profile-site drift, counter/residency gates, and malformed/empty input
// rejected with a diagnostic instead of a crash. Also round-trips the
// BenchJson writer (bench/Common.h) through src/support/Json.h to pin the
// schema the gate consumes.
//
//===----------------------------------------------------------------------===//

#include "GateLib.h"

#include "bench/Common.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mpl;
using gate::BenchFile;
using gate::Finding;
using gate::GateOptions;
using gate::GateResult;
using gate::Noise;

namespace {

/// One synthetic mpl-bench/1 row. Defaults describe a healthy 20ms row
/// with a moderate (5% cv) spread.
struct RowSpec {
  std::string Name = "bench";
  std::string Config = "par-w1";
  bool Entangled = false;
  double MedianS = 0.020;
  std::vector<double> RepS = {0.019, 0.020, 0.021}; // sigma = 1ms
  int64_t EntangledReads = 0;
  int64_t PinsDown = 0;
  int64_t PinnedObjects = 0;
  int64_t PinnedBytes = 0;
  int64_t Unpins = 0;
  int64_t ContCaptured = 0;
  int64_t ContResumed = 0;
  int64_t JitCompiled = 0; ///< >0 emits the optional "jit" block.
  int64_t JitEntries = 0;
  int64_t JitCodeBytes = 0;
  int64_t Residency = 0;
  int64_t Checksum = 1234;
  int64_t LeakedPins = 0;
  int64_t ProfBytes = 0;
  std::string SitesJson; ///< e.g. {"name":"em.pin.down","events":9,"bytes":64}
};

std::string rowJson(const RowSpec &S) {
  std::string Reps;
  for (size_t I = 0; I < S.RepS.size(); ++I)
    Reps += (I ? "," : "") + std::to_string(S.RepS[I]);
  // Like the BenchJson writer, the "jit" block is additive: emitted only
  // when the row actually compiled something.
  std::string Jit;
  if (S.JitCompiled > 0) {
    char JBuf[160];
    std::snprintf(JBuf, sizeof(JBuf),
                  "\"jit\":{\"compiled\":%lld,\"entries\":%lld,"
                  "\"code_bytes\":%lld},",
                  static_cast<long long>(S.JitCompiled),
                  static_cast<long long>(S.JitEntries),
                  static_cast<long long>(S.JitCodeBytes));
    Jit = JBuf;
  }
  char Buf[2048];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"name\":\"%s\",\"config\":\"%s\",\"entangled\":%s,"
      "\"time\":{\"median_s\":%.9g,\"min_s\":%.9g,\"stddev_s\":0,"
      "\"rep_s\":[%s]},"
      "\"work_span\":{\"work_s\":0.05,\"span_s\":0.01},"
      "\"em\":{\"entangled_reads\":%lld,\"pins_down\":%lld,\"pins_cross\":0,"
      "\"pins_holder\":0,\"pinned_objects\":%lld,\"pinned_bytes\":%lld,"
      "\"unpins\":%lld,\"cont_captured\":%lld,\"cont_resumed\":%lld},"
      "%s"
      "\"gc\":{\"collections\":1,\"max_pause_ns\":0,\"total_pause_ns\":0,"
      "\"inplace_bytes\":0},"
      "\"max_residency_bytes\":%lld,\"checksum\":%lld,"
      "\"profile\":{\"leaked_pins\":%lld,\"leaked_bytes\":0,"
      "\"pin_bytes_attributed\":%lld,\"sites\":[%s]}}",
      S.Name.c_str(), S.Config.c_str(), S.Entangled ? "true" : "false",
      S.MedianS, S.MedianS, Reps.c_str(),
      static_cast<long long>(S.EntangledReads),
      static_cast<long long>(S.PinsDown),
      static_cast<long long>(S.PinnedObjects),
      static_cast<long long>(S.PinnedBytes), static_cast<long long>(S.Unpins),
      static_cast<long long>(S.ContCaptured),
      static_cast<long long>(S.ContResumed), Jit.c_str(),
      static_cast<long long>(S.Residency), static_cast<long long>(S.Checksum),
      static_cast<long long>(S.LeakedPins),
      static_cast<long long>(S.ProfBytes), S.SitesJson.c_str());
  return Buf;
}

std::string fileJson(double Scale, const std::vector<RowSpec> &Rows) {
  std::string S = "{\"schema\":\"mpl-bench/1\",\"bench\":\"synthetic\","
                  "\"scale\":" +
                  std::to_string(Scale) + ",\"reps\":3,\"rows\":[";
  for (size_t I = 0; I < Rows.size(); ++I)
    S += (I ? ",\n" : "") + rowJson(Rows[I]);
  S += "]}";
  return S;
}

BenchFile parseOrDie(const std::string &Text) {
  BenchFile F;
  std::string Err;
  EXPECT_TRUE(gate::parseBenchJson(Text, F, Err)) << Err;
  return F;
}

GateResult gateOne(const RowSpec &Base, const RowSpec &Cur,
                   const GateOptions &Opts = GateOptions{}) {
  BenchFile B = parseOrDie(fileJson(0.05, {Base}));
  BenchFile C = parseOrDie(fileJson(0.05, {Cur}));
  return gate::compare(B, C, Opts);
}

} // namespace

//===----------------------------------------------------------------------===//
// Parsing and validation
//===----------------------------------------------------------------------===//

TEST(ReportParse, EmptyInputRejected) {
  BenchFile F;
  std::string Err;
  EXPECT_FALSE(gate::parseBenchJson("", F, Err));
  EXPECT_NE(Err.find("empty"), std::string::npos) << Err;
  EXPECT_FALSE(gate::parseBenchJson("   \n\t", F, Err));
}

TEST(ReportParse, MalformedJsonRejected) {
  BenchFile F;
  std::string Err;
  EXPECT_FALSE(gate::parseBenchJson("{\"schema\":\"mpl-bench/1\",", F, Err));
  EXPECT_NE(Err.find("parse error"), std::string::npos) << Err;
  EXPECT_FALSE(gate::parseBenchJson("[1,2,3]", F, Err));
  EXPECT_NE(Err.find("not an object"), std::string::npos) << Err;
}

TEST(ReportParse, WrongSchemaRejected) {
  BenchFile F;
  std::string Err;
  EXPECT_FALSE(gate::parseBenchJson("{\"schema\":\"mpl-trace/1\"}", F, Err));
  EXPECT_NE(Err.find("mpl-trace/1"), std::string::npos) << Err;
  EXPECT_FALSE(gate::parseBenchJson("{\"bench\":\"x\"}", F, Err));
  EXPECT_NE(Err.find("schema"), std::string::npos) << Err;
}

TEST(ReportParse, MalformedRowsRejected) {
  BenchFile F;
  std::string Err;
  // No rows array.
  EXPECT_FALSE(
      gate::parseBenchJson("{\"schema\":\"mpl-bench/1\"}", F, Err));
  EXPECT_NE(Err.find("rows"), std::string::npos) << Err;
  // Row without a name.
  EXPECT_FALSE(gate::parseBenchJson(
      "{\"schema\":\"mpl-bench/1\",\"rows\":[{\"config\":\"seq\"}]}", F, Err));
  EXPECT_NE(Err.find("name"), std::string::npos) << Err;
  // Row without a median.
  EXPECT_FALSE(gate::parseBenchJson(
      "{\"schema\":\"mpl-bench/1\",\"rows\":[{\"name\":\"x\"}]}", F, Err));
  EXPECT_NE(Err.find("median"), std::string::npos) << Err;
  // Row that is not an object.
  EXPECT_FALSE(gate::parseBenchJson(
      "{\"schema\":\"mpl-bench/1\",\"rows\":[7]}", F, Err));
}

TEST(ReportParse, GoodFileParses) {
  RowSpec S;
  S.Entangled = true;
  S.PinnedBytes = 512;
  S.ProfBytes = 512;
  S.SitesJson = "{\"name\":\"em.pin.down\",\"events\":9,\"bytes\":512}";
  BenchFile F = parseOrDie(fileJson(0.05, {S}));
  ASSERT_EQ(F.Rows.size(), 1u);
  const gate::Row *R = F.find("bench", "par-w1");
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(R->Entangled);
  EXPECT_EQ(R->RepS.size(), 3u);
  EXPECT_EQ(R->PinnedBytes, 512);
  ASSERT_EQ(R->Sites.size(), 1u);
  EXPECT_EQ(R->Sites[0].Name, "em.pin.down");
  EXPECT_EQ(R->Sites[0].Bytes, 512);
  EXPECT_EQ(F.find("bench", "no-such-config"), nullptr);
}

//===----------------------------------------------------------------------===//
// Noise classes and sigma
//===----------------------------------------------------------------------===//

TEST(ReportNoise, SigmaRecomputedFromRepTimes) {
  RowSpec S; // reps 19/20/21ms -> sample stddev exactly 1ms
  BenchFile F = parseOrDie(fileJson(0.05, {S}));
  EXPECT_NEAR(F.Rows[0].sigmaS(), 0.001, 1e-9);
  EXPECT_EQ(F.Rows[0].noiseClass(), Noise::Moderate);
}

TEST(ReportNoise, Classes) {
  RowSpec Stable;
  Stable.RepS = {0.0199, 0.020, 0.0201}; // cv 0.5%
  EXPECT_EQ(parseOrDie(fileJson(0.05, {Stable})).Rows[0].noiseClass(),
            Noise::Stable);
  RowSpec Noisy;
  Noisy.RepS = {0.015, 0.020, 0.025}; // cv 25%
  EXPECT_EQ(parseOrDie(fileJson(0.05, {Noisy})).Rows[0].noiseClass(),
            Noise::Noisy);
  RowSpec OneRep;
  OneRep.RepS = {0.020}; // no spread measurable
  EXPECT_EQ(parseOrDie(fileJson(0.05, {OneRep})).Rows[0].noiseClass(),
            Noise::Unknown);
}

//===----------------------------------------------------------------------===//
// Time gate
//===----------------------------------------------------------------------===//

TEST(ReportTimeGate, WithinNoisePasses) {
  RowSpec Base, Cur;
  Cur.MedianS = 0.0209; // +0.9 sigma, allowance is 2 sigma = 2ms
  GateResult R = gateOne(Base, Cur);
  EXPECT_TRUE(R.ok()) << gate::renderFindings(R, GateOptions{});
  EXPECT_EQ(R.ComparedRows, 1);
  EXPECT_EQ(R.TimeGatedRows, 1);
}

TEST(ReportTimeGate, ThreeSigmaRegressionFails) {
  // The acceptance scenario: current median inflated by 3 baseline
  // stddevs must fail while the 1-sigma delta above passes.
  RowSpec Base, Cur;
  Cur.MedianS = 0.023; // +3 sigma > max(2*1ms, 10% floor = 2ms)
  GateResult R = gateOne(Base, Cur);
  EXPECT_FALSE(R.ok());
  ASSERT_NE(R.first(Finding::Kind::TimeRegression), nullptr);
  EXPECT_NE(R.first(Finding::Kind::TimeRegression)->Message.find("sigma"),
            std::string::npos);
}

TEST(ReportTimeGate, FloorAbsorbsTinySigma) {
  // A hyper-stable baseline (cv ~0.5%) must not turn a 5% wobble into a
  // failure: the floor-pct term dominates k*sigma.
  RowSpec Base;
  Base.RepS = {0.0199, 0.020, 0.0201};
  RowSpec Cur = Base;
  Cur.MedianS = 0.021; // +5% < 10% floor
  EXPECT_TRUE(gateOne(Base, Cur).ok());
  Cur.MedianS = 0.023; // +15% > floor
  EXPECT_FALSE(gateOne(Base, Cur).ok());
}

TEST(ReportTimeGate, NoisyRowWidensFloor) {
  RowSpec Base;
  Base.RepS = {0.015, 0.020, 0.025}; // sigma 5ms, noisy
  RowSpec Cur = Base;
  Cur.MedianS = 0.029; // within 2 sigma
  EXPECT_TRUE(gateOne(Base, Cur).ok());
  Cur.MedianS = 0.031; // beyond 2 sigma and the doubled floor
  EXPECT_FALSE(gateOne(Base, Cur).ok());
}

TEST(ReportTimeGate, ImprovementNeverFails) {
  RowSpec Base, Cur;
  Base.PinnedBytes = 4096;
  Base.Residency = 1 << 20;
  Cur.MedianS = 0.002; // 10x faster
  Cur.RepS = {0.002, 0.002, 0.002};
  Cur.PinnedBytes = 0;
  Cur.Residency = 0;
  GateOptions Opts;
  Opts.GateResidency = true;
  Opts.GateCounters = true;
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
}

TEST(ReportTimeGate, ShortRowsNotTimeGated) {
  RowSpec Base;
  Base.MedianS = 0.004; // under the 10ms min-time bar
  Base.RepS = {0.004, 0.004, 0.004};
  RowSpec Cur = Base;
  Cur.MedianS = 0.009; // +125%, but too short to gate
  GateResult R = gateOne(Base, Cur);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.TimeGatedRows, 0);
  // ... but its counters/checksums still gate.
  Cur.Checksum = 9999;
  EXPECT_FALSE(gateOne(Base, Cur).ok());
}

//===----------------------------------------------------------------------===//
// Structural gates: missing rows, leaks, checksums, attribution
//===----------------------------------------------------------------------===//

TEST(ReportGate, MissingRowFails) {
  RowSpec A, B;
  B.Name = "other";
  BenchFile Base = parseOrDie(fileJson(0.05, {A, B}));
  BenchFile Cur = parseOrDie(fileJson(0.05, {A}));
  GateResult R = gate::compare(Base, Cur, GateOptions{});
  EXPECT_FALSE(R.ok());
  ASSERT_NE(R.first(Finding::Kind::MissingRow), nullptr);
  EXPECT_EQ(R.first(Finding::Kind::MissingRow)->Name, "other");
  // New rows in the current run are fine (the suite grew).
  EXPECT_TRUE(gate::compare(Cur, Base, GateOptions{}).ok());
}

TEST(ReportGate, LeakedPinsFail) {
  RowSpec Base, Cur;
  Cur.LeakedPins = 3;
  GateResult R = gateOne(Base, Cur);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.first(Finding::Kind::LeakedPins), nullptr);
}

TEST(ReportGate, ChecksumMismatchSameScaleFails) {
  RowSpec Base, Cur;
  Cur.Checksum = 4321;
  GateResult R = gateOne(Base, Cur);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.first(Finding::Kind::ChecksumMismatch), nullptr);
}

TEST(ReportGate, ChecksumCrossScaleIgnored) {
  // Checksums are a function of the problem size: across scales they are
  // expected to differ, and the gate says so in a non-fatal note.
  RowSpec Base, Cur;
  Cur.Checksum = 4321;
  BenchFile B = parseOrDie(fileJson(0.05, {Base}));
  BenchFile C = parseOrDie(fileJson(0.25, {Cur}));
  GateResult R = gate::compare(B, C, GateOptions{});
  EXPECT_TRUE(R.ok()) << gate::renderFindings(R, GateOptions{});
  EXPECT_FALSE(R.SameScale);
  ASSERT_FALSE(R.Findings.empty());
  EXPECT_FALSE(R.Findings.front().Fatal);
}

TEST(ReportGate, AttributionMismatchFails) {
  // A profiled row (sites present) whose attributed pin bytes disagree
  // with the em counter is corrupt telemetry.
  RowSpec Base, Cur;
  Base.PinnedBytes = Base.ProfBytes = 512;
  Base.SitesJson = "{\"name\":\"em.pin.down\",\"events\":4,\"bytes\":512}";
  Cur = Base;
  Cur.ProfBytes = 100;
  GateResult R = gateOne(Base, Cur);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.first(Finding::Kind::AttributionMismatch), nullptr);
  // Unprofiled rows (no sites) carry attributed=0 legitimately.
  Cur.ProfBytes = 0;
  Cur.SitesJson.clear();
  EXPECT_TRUE(gateOne(Base, Cur).ok());
}

//===----------------------------------------------------------------------===//
// Residency and counter gates
//===----------------------------------------------------------------------===//

TEST(ReportSpaceGate, ResidencyGrowthFails) {
  RowSpec Base, Cur;
  Base.Residency = 8 << 20;
  Cur.Residency = 16 << 20; // +100% > 50% tolerance
  GateOptions Opts;
  Opts.GateResidency = true;
  GateResult R = gateOne(Base, Cur, Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.first(Finding::Kind::ResidencyRegression), nullptr);
  // Without the opt-in the same delta passes (time is unchanged).
  EXPECT_TRUE(gateOne(Base, Cur).ok());
  // Within tolerance passes.
  Cur.Residency = 10 << 20;
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
}

TEST(ReportSpaceGate, ZeroBaselineUsesAbsSlack) {
  // An allocation-free baseline (fib) must tolerate page-size jitter but
  // fail when the benchmark suddenly allocates for real.
  RowSpec Base, Cur;
  GateOptions Opts;
  Opts.GateResidency = true;
  Cur.Residency = 256 << 10; // under the 1MiB absolute slack
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
  Cur.Residency = 8 << 20;
  EXPECT_FALSE(gateOne(Base, Cur, Opts).ok());
}

TEST(ReportCounterGate, EntangledReadsJump) {
  RowSpec Base, Cur;
  Base.Entangled = Cur.Entangled = true;
  Base.EntangledReads = 1000;
  GateOptions Opts;
  Opts.GateCounters = true;
  Cur.EntangledReads = 1900; // under 100% tolerance
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
  Cur.EntangledReads = 2500;
  GateResult R = gateOne(Base, Cur, Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.first(Finding::Kind::CounterRegression), nullptr);
}

TEST(ReportCounterGate, DisentangledStartsPinning) {
  // A disentangled row (zero baseline counters) that starts pinning
  // objects: the abs slack forgives scheduler jitter, not real pins.
  RowSpec Base, Cur;
  GateOptions Opts;
  Opts.GateCounters = true;
  Cur.PinnedObjects = 64; // within 128-event slack
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
  Cur.PinnedObjects = 5000;
  Cur.PinnedBytes = 1 << 20;
  EXPECT_FALSE(gateOne(Base, Cur, Opts).ok());
}

TEST(ReportCounterGate, ContinuationTrafficJump) {
  // The BENCH_T3 effects row: a pml program whose continuation
  // capture/resume counts are a function of the program alone, so a jump
  // past tolerance means the VM started capturing where it didn't before.
  RowSpec Base, Cur;
  Base.ContCaptured = Base.ContResumed = 4000;
  Cur.ContCaptured = Cur.ContResumed = 4000;
  GateOptions Opts;
  Opts.GateCounters = true;
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
  // Fewer captures (an optimization) passes: counters gate upward only.
  Cur.ContCaptured = Cur.ContResumed = 100;
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
  // A 3x capture jump fails, and names the counter.
  Cur.ContCaptured = 12000;
  Cur.ContResumed = 4000;
  GateResult R = gateOne(Base, Cur, Opts);
  EXPECT_FALSE(R.ok());
  const Finding *F = R.first(Finding::Kind::CounterRegression);
  ASSERT_NE(F, nullptr);
  EXPECT_NE(F->Message.find("cont_captured"), std::string::npos) << F->Message;
  // Without the counter opt-in the same jump passes.
  EXPECT_TRUE(gateOne(Base, Cur).ok());
}

TEST(ReportCounterGate, JitBlockParsedAndGated) {
  // The BENCH_T3 jit ablation rows: tiering at threshold 1 makes the
  // compile count a function of the program, so it gates like the
  // continuation counters — a compile explosion fails, fewer compiles
  // (or an absent block, i.e. interpreter rows) never do.
  RowSpec Base, Cur;
  Base.Config = Cur.Config = "pml-jit-manage";
  Base.JitCompiled = 6;
  Base.JitEntries = 4000;
  Base.JitCodeBytes = 9000;
  BenchFile F = parseOrDie(fileJson(0.05, {Base}));
  EXPECT_EQ(F.Rows[0].JitCompiled, 6);
  EXPECT_EQ(F.Rows[0].JitEntries, 4000);
  EXPECT_EQ(F.Rows[0].JitCodeBytes, 9000);
  // Absent block parses as zeros (old baselines stay loadable).
  EXPECT_EQ(parseOrDie(fileJson(0.05, {RowSpec{}})).Rows[0].JitCompiled, 0);

  GateOptions Opts;
  Opts.GateCounters = true;
  Cur = Base;
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
  Cur.JitCompiled = 0; // interpreter fallback: gates upward only
  Cur.JitEntries = 0;
  Cur.JitCodeBytes = 0;
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
  Cur = Base;
  Cur.JitCompiled = 600; // past 100% tolerance + 128-event slack
  GateResult R = gateOne(Base, Cur, Opts);
  EXPECT_FALSE(R.ok());
  const Finding *F2 = R.first(Finding::Kind::CounterRegression);
  ASSERT_NE(F2, nullptr);
  EXPECT_NE(F2->Message.find("jit_compiled"), std::string::npos)
      << F2->Message;
}

TEST(ReportTimeGate, ConfigSubstrArmsTimeGateSelectively) {
  // BENCH_T3 runs counters-only (--no-time-gate) except for the jit
  // ablation rows, which --time-gate-config pml-jit holds to the
  // stddev-aware time rule: losing the JIT's speedup must fail even
  // while the noisier interpreter rows stay exempt.
  RowSpec InterpB, JitB;
  InterpB.Name = JitB.Name = "fib-25";
  InterpB.Config = "pml-interp-manage";
  JitB.Config = "pml-jit-manage";
  RowSpec InterpC = InterpB, JitC = JitB;
  InterpC.MedianS = JitC.MedianS = 0.060; // 3x regression on both rows
  GateOptions Opts;
  Opts.GateTimes = false;
  Opts.TimeGateConfigSubstr = "pml-jit";
  BenchFile B = parseOrDie(fileJson(0.05, {InterpB, JitB}));
  BenchFile C = parseOrDie(fileJson(0.05, {InterpC, JitC}));
  GateResult R = gate::compare(B, C, Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.TimeGatedRows, 1); // only the jit row was held to the rule
  const Finding *F = R.first(Finding::Kind::TimeRegression);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Config, "pml-jit-manage");
  // A jit row within noise passes with the substring armed.
  JitC.MedianS = 0.0205;
  InterpC.MedianS = 0.060; // interp row still 3x: never time-gated
  C = parseOrDie(fileJson(0.05, {InterpC, JitC}));
  EXPECT_TRUE(gate::compare(B, C, Opts).ok());
}

TEST(ReportTimeGate, ConfigSubstrExemptsRowsFromTimeGate) {
  // The dual knob: the spans-overhead T1 gate runs with the time rule
  // ON, but the pml VM rows must be exempt — arming spans pins the VM
  // to the interpreter, so the vm-jit row regresses by construction.
  RowSpec CppB, VmB;
  CppB.Name = VmB.Name = "fib";
  CppB.Config = "par-w1";
  VmB.Name = "pml-fib-25";
  VmB.Config = "vm-jit-w1";
  RowSpec CppC = CppB, VmC = VmB;
  VmC.MedianS = 0.060; // 3x "regression": interpreter-pinned under spans
  GateOptions Opts;
  Opts.TimeExemptConfigSubstr = "vm-";
  BenchFile B = parseOrDie(fileJson(0.05, {CppB, VmB}));
  BenchFile C = parseOrDie(fileJson(0.05, {CppC, VmC}));
  GateResult R = gate::compare(B, C, Opts);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.TimeGatedRows, 1); // only the C++ row was held to the rule
  // The exemption is surgical: a real regression on the C++ row still
  // fails even while the vm row is exempt.
  CppC.MedianS = 0.060;
  C = parseOrDie(fileJson(0.05, {CppC, VmC}));
  R = gate::compare(B, C, Opts);
  EXPECT_FALSE(R.ok());
  const Finding *F = R.first(Finding::Kind::TimeRegression);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Config, "par-w1");
}

//===----------------------------------------------------------------------===//
// Profile-site drift
//===----------------------------------------------------------------------===//

TEST(ReportDrift, NewSiteFailsEvenWithinTimeNoise) {
  // The motivating case: a disentangled benchmark starts pinning. Its
  // time stays within noise, but its profile grows a site the baseline
  // never had — the drift gate alone must catch it.
  RowSpec Base, Cur;
  Cur.MedianS = 0.0205; // well within noise
  Cur.SitesJson =
      "{\"name\":\"em.pin.down\",\"events\":4000,\"bytes\":2000000}";
  Cur.PinnedBytes = Cur.ProfBytes = 2000000;
  GateOptions Opts;
  Opts.ProfileDrift = true;
  GateResult R = gateOne(Base, Cur, Opts);
  EXPECT_FALSE(R.ok());
  const Finding *F = R.first(Finding::Kind::ProfileDrift);
  ASSERT_NE(F, nullptr);
  EXPECT_NE(F->Message.find("new"), std::string::npos) << F->Message;
  // Without --profile-drift the same row passes (time within noise).
  EXPECT_TRUE(gateOne(Base, Cur).ok());
}

TEST(ReportDrift, SiteGrowthGatedShrinkIsNot) {
  RowSpec Base, Cur;
  Base.SitesJson =
      "{\"name\":\"em.pin.cross\",\"events\":1000,\"bytes\":100000}";
  Base.PinnedBytes = Base.ProfBytes = 100000;
  GateOptions Opts;
  Opts.ProfileDrift = true;
  // Growth within 100% tolerance passes.
  Cur = Base;
  Cur.SitesJson =
      "{\"name\":\"em.pin.cross\",\"events\":1800,\"bytes\":180000}";
  Cur.PinnedBytes = Cur.ProfBytes = 180000;
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
  // 4x bytes fails.
  Cur.SitesJson =
      "{\"name\":\"em.pin.cross\",\"events\":1000,\"bytes\":400000}";
  Cur.PinnedBytes = Cur.ProfBytes = 400000;
  EXPECT_FALSE(gateOne(Base, Cur, Opts).ok());
  // Shrink/disappearance is an improvement.
  Cur = Base;
  Cur.SitesJson.clear();
  Cur.PinnedBytes = Cur.ProfBytes = 0;
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
}

TEST(ReportDrift, TopKLimitsJoin) {
  // Only the top-K sites of the current run are gated: a regressed site
  // ranked past K is ignored at K=1 and caught at K=2.
  RowSpec Base, Cur;
  Base.SitesJson =
      "{\"name\":\"em.pin.down\",\"events\":1000,\"bytes\":500000}";
  Base.PinnedBytes = Base.ProfBytes = 500000;
  Cur.SitesJson =
      "{\"name\":\"em.pin.down\",\"events\":1000,\"bytes\":500000},"
      "{\"name\":\"em.read.entangled\",\"events\":90000,\"bytes\":90000}";
  Cur.PinnedBytes = Cur.ProfBytes = 500000;
  GateOptions Opts;
  Opts.ProfileDrift = true;
  Opts.DriftTopK = 1;
  EXPECT_TRUE(gateOne(Base, Cur, Opts).ok());
  Opts.DriftTopK = 2;
  EXPECT_FALSE(gateOne(Base, Cur, Opts).ok());
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(ReportRender, TableCarriesNoiseClass) {
  RowSpec S;
  BenchFile F = parseOrDie(fileJson(0.05, {S}));
  std::string T = gate::renderTable(F);
  EXPECT_NE(T.find("moderate"), std::string::npos) << T;
  EXPECT_NE(T.find("bench"), std::string::npos);
}

TEST(ReportRender, FindingsSummaryLine) {
  RowSpec Base, Cur;
  Cur.MedianS = 0.023;
  GateResult R = gateOne(Base, Cur);
  std::string S = gate::renderFindings(R, GateOptions{});
  EXPECT_NE(S.find("FAIL [time] bench/par-w1"), std::string::npos) << S;
  EXPECT_NE(S.find("compared 1 rows"), std::string::npos) << S;
}

//===----------------------------------------------------------------------===//
// BenchJson writer round-trip (bench/Common.h -> support/Json.h -> gate)
//===----------------------------------------------------------------------===//

TEST(BenchJsonRoundTrip, SchemaFieldsSurvive) {
  bench::RunResult R;
  R.Seconds = 0.020;
  R.MinSeconds = 0.019;
  R.StddevSeconds = 0.001;
  R.RepSeconds = {0.019, 0.020, 0.021};
  R.WS.WorkSec = 0.05;
  R.WS.SpanSec = 0.01;
  R.Checksum = 42;
  R.Stats.EntangledReads = 7;
  R.Stats.PinsDown = 3;
  R.Stats.PinnedObjects = 3;
  R.Stats.PinnedBytes = 1024;
  R.Stats.Unpins = 3;
  R.Stats.GcCount = 2;
  R.Stats.PeakResidency = 1 << 20;
  bench::ProfileSiteRow Site;
  Site.Name = "em.pin.down";
  Site.Events = 3;
  Site.Bytes = 1024;
  Site.LifetimeP50Ns = 100;
  Site.LifetimeP99Ns = 900;
  R.ProfileSites.push_back(Site);

  bench::BenchJson J("roundtrip", 0.25, 3);
  J.addMeta("note", "quotes \"and\" backslash \\ survive");
  J.addMetaInt("workers", 2);
  J.addRow("bench \"x\"", "par-w2", /*Entangled=*/true, R);
  std::string Doc = J.dump();

  // Raw parse with src/support/Json.h: every schema field survives.
  json::Value Root;
  std::string Err;
  ASSERT_TRUE(json::parse(Doc, Root, Err)) << Err;
  EXPECT_EQ(Root.field("schema")->StrV, "mpl-bench/1");
  EXPECT_EQ(Root.field("reps")->NumV, 3);
  EXPECT_EQ(Root.field("workers")->NumV, 2);
  EXPECT_NE(Root.field("note")->StrV.find("\"and\""), std::string::npos);
  const json::Value *Row0 = &Root.field("rows")->Items.at(0);
  EXPECT_EQ(Row0->field("name")->StrV, "bench \"x\"");
  EXPECT_TRUE(Row0->field("entangled")->BoolV);
  EXPECT_EQ(Row0->field("time")->field("rep_s")->Items.size(), 3u);
  EXPECT_EQ(Row0->field("checksum")->NumV, 42);
  const json::Value *Prof = Row0->field("profile");
  ASSERT_NE(Prof, nullptr);
  EXPECT_EQ(Prof->field("pin_bytes_attributed")->NumV, 1024);
  EXPECT_EQ(Prof->field("sites")->Items.at(0).field("name")->StrV,
            "em.pin.down");

  // And the gate's own loader accepts the writer's output wholesale.
  BenchFile F;
  ASSERT_TRUE(gate::parseBenchJson(Doc, F, Err)) << Err;
  ASSERT_EQ(F.Rows.size(), 1u);
  const gate::Row &G = F.Rows[0];
  EXPECT_EQ(G.Name, "bench \"x\"");
  EXPECT_NEAR(G.sigmaS(), 0.001, 1e-9);
  EXPECT_EQ(G.PinBytesAttributed, 1024);
  EXPECT_EQ(G.PinnedBytes, 1024);
  ASSERT_EQ(G.Sites.size(), 1u);
  EXPECT_EQ(G.Sites[0].Events, 3);
  // A self-compare of the round-tripped file is clean under every gate.
  GateOptions Opts;
  Opts.GateResidency = Opts.GateCounters = Opts.ProfileDrift = true;
  EXPECT_TRUE(gate::compare(F, F, Opts).ok());
}

//===----------------------------------------------------------------------===//
// mpl-spans/1 (tools/mpl_spans)
//===----------------------------------------------------------------------===//

namespace {

/// A minimal but complete mpl-spans/1 document in the exact shape
/// obs::SpanRunSummary::toJson() emits (root parent -1, 0/1 booleans).
const char *SpansDoc =
    "{\"schema\":\"mpl-spans/1\","
    "\"sched\":{\"work_s\":0.010,\"span_s\":0.006},"
    "\"ledger\":{\"valid\":1,\"tasks\":3,\"stolen\":1,\"dropped\":0,"
    "\"work_s\":0.010,\"critical_path_s\":0.006,\"agreement_pct\":0.0,"
    "\"em_reads\":1,\"pins\":1},"
    "\"lines\":[{\"line\":6,\"col\":7,\"em_reads\":1,\"pins\":0,\"tasks\":0,"
    "\"self_s\":0,\"cp_self_s\":0},"
    "{\"line\":4,\"col\":3,\"em_reads\":0,\"pins\":1,\"tasks\":2,"
    "\"self_s\":0.004,\"cp_self_s\":0.002}],"
    "\"critical_path\":[1,3],"
    "\"tasks\":["
    "{\"id\":1,\"parent\":-1,\"start_s\":0,\"stop_s\":0.008,\"self_s\":0.004,"
    "\"worker\":0,\"stolen\":0,\"on_cp\":1,\"line\":0,\"col\":0,\"depth\":0,"
    "\"em_reads\":0,\"pins\":0},"
    "{\"id\":2,\"parent\":1,\"start_s\":0.001,\"stop_s\":0.003,"
    "\"self_s\":0.002,\"worker\":0,\"stolen\":0,\"on_cp\":0,\"line\":4,"
    "\"col\":3,\"depth\":1,\"em_reads\":0,\"pins\":1},"
    "{\"id\":3,\"parent\":1,\"start_s\":0.001,\"stop_s\":0.005,"
    "\"self_s\":0.004,\"worker\":1,\"stolen\":1,\"on_cp\":1,\"line\":4,"
    "\"col\":3,\"depth\":1,\"em_reads\":1,\"pins\":0}"
    "]}";

} // namespace

TEST(SpansParse, GoodFileParses) {
  gate::SpansFile F;
  std::string Err;
  ASSERT_TRUE(gate::parseSpansJson(SpansDoc, F, Err)) << Err;
  EXPECT_TRUE(F.LedgerValid);
  EXPECT_EQ(F.Tasks, 3);
  EXPECT_EQ(F.Stolen, 1);
  EXPECT_EQ(F.Dropped, 0);
  EXPECT_DOUBLE_EQ(F.SchedWorkS, 0.010);
  EXPECT_DOUBLE_EQ(F.CriticalPathS, 0.006);
  EXPECT_EQ(F.EmReads, 1);
  ASSERT_EQ(F.Lines.size(), 2u);
  EXPECT_EQ(F.Lines[0].Line, 6);
  EXPECT_EQ(F.Lines[0].EmReads, 1);
  ASSERT_EQ(F.TaskRows.size(), 3u);
  EXPECT_EQ(F.TaskRows[0].Parent, -1);
  EXPECT_TRUE(F.TaskRows[2].Stolen);
  EXPECT_TRUE(F.TaskRows[2].OnCp);
  ASSERT_EQ(F.CriticalPath.size(), 2u);
  EXPECT_EQ(F.CriticalPath[1], 3u);
}

TEST(SpansParse, MalformedRejected) {
  gate::SpansFile F;
  std::string Err;
  EXPECT_FALSE(gate::parseSpansJson("", F, Err));
  EXPECT_NE(Err.find("empty"), std::string::npos) << Err;
  EXPECT_FALSE(gate::parseSpansJson("{\"schema\":\"mpl-spans/1\",", F, Err));
  EXPECT_NE(Err.find("parse error"), std::string::npos) << Err;
  EXPECT_FALSE(gate::parseSpansJson("[1]", F, Err));
  EXPECT_NE(Err.find("not an object"), std::string::npos) << Err;
  EXPECT_FALSE(gate::parseSpansJson("{\"schema\":\"mpl-bench/1\"}", F, Err));
  EXPECT_NE(Err.find("mpl-bench/1"), std::string::npos) << Err;
  EXPECT_FALSE(gate::parseSpansJson("{\"schema\":\"mpl-spans/1\"}", F, Err));
  EXPECT_NE(Err.find("ledger"), std::string::npos) << Err;
  EXPECT_FALSE(gate::parseSpansJson(
      "{\"schema\":\"mpl-spans/1\",\"ledger\":{\"valid\":1}}", F, Err));
  EXPECT_NE(Err.find("tasks"), std::string::npos) << Err;
  EXPECT_FALSE(gate::parseSpansJson(
      "{\"schema\":\"mpl-spans/1\",\"ledger\":{\"valid\":1},"
      "\"tasks\":[{\"parent\":-1}]}",
      F, Err));
  EXPECT_NE(Err.find("id"), std::string::npos) << Err;
}

TEST(SpansRender, SummaryPathLinesAndFold) {
  gate::SpansFile F;
  std::string Err;
  ASSERT_TRUE(gate::parseSpansJson(SpansDoc, F, Err)) << Err;

  std::string Sum = gate::renderSpansSummary(F);
  EXPECT_NE(Sum.find("3 tasks"), std::string::npos) << Sum;
  EXPECT_NE(Sum.find("critical path"), std::string::npos) << Sum;

  // Critical path render lists exactly the on_cp tasks, root labelled.
  std::string Cp = gate::renderCriticalPath(F);
  EXPECT_NE(Cp.find("#1"), std::string::npos) << Cp;
  EXPECT_NE(Cp.find("root"), std::string::npos) << Cp;
  EXPECT_NE(Cp.find("(stolen)"), std::string::npos) << Cp;
  EXPECT_EQ(Cp.find("#2"), std::string::npos) << "off-CP task listed:\n"
                                              << Cp;

  // Top lines sorted by em reads first: the read line leads.
  std::string Top = gate::renderTopLines(F, 10);
  size_t P6 = Top.find("L6:7");
  size_t P4 = Top.find("L4:3");
  ASSERT_NE(P6, std::string::npos) << Top;
  ASSERT_NE(P4, std::string::npos) << Top;
  EXPECT_LT(P6, P4) << "em-read line must sort first:\n" << Top;

  // Folded stacks: child frames chain through the parent's fork site to
  // the root; values are self time in ns.
  std::string Fold = gate::foldSpans(F);
  EXPECT_NE(Fold.find("root 4000000\n"), std::string::npos) << Fold;
  EXPECT_NE(Fold.find("root;L4:3 2000000\n"), std::string::npos) << Fold;
  EXPECT_NE(Fold.find("root;L4:3 4000000\n"), std::string::npos) << Fold;
}
